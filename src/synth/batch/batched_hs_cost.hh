/**
 * @file
 * Lane-batched Hilbert-Schmidt cost: one evaluation computes the
 * objective and analytic gradient for up to kLanes parameter vectors
 * of the SAME ansatz against the SAME target.
 *
 * The op plan, the target conjugate and the loop structure are
 * exactly the scalar HsCost's (hs_cost.cc); the matrices are laid
 * out structure-of-arrays (batch_kernels.hh) and every scalar
 * floating-point operation becomes one vector operation across
 * lanes. Trigonometry stays scalar: u3WithDerivatives runs once per
 * (op, lane) and is fanned into the SoA gate cache, so the libm
 * values each lane sees are the ones the scalar engine would
 * compute. The result is bit-for-bit parity per lane, which the
 * batched multistart driver (batch_instantiate.cc) relies on and the
 * determinism tests pin.
 *
 * Only the gradient path exists: L-BFGS evaluates the gradient at
 * every point it visits, so a batched value-only path would have no
 * caller.
 */

#ifndef QUEST_SYNTH_BATCH_BATCHED_HS_COST_HH
#define QUEST_SYNTH_BATCH_BATCHED_HS_COST_HH

#include <array>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hh"
#include "synth/ansatz.hh"
#include "synth/batch/batch_kernels.hh"
#include "synth/op_plan.hh"

namespace quest::synth {

/**
 * Flat SoA scratch arena reused across evaluateBatch() calls. All
 * buffers are plain std::vector<double> (no aligned new: the
 * allocation-probe tests override only the plain operators) with
 * split real/imaginary planes; ensure() only grows, and steady-state
 * calls never touch the allocator.
 */
struct BatchedHsWorkspace
{
    std::vector<double> prefixRe, prefixIm;      //!< (opCount+1) SoA slices
    std::vector<double> backwardRe, backwardIm;  //!< transposed accumulator
    std::vector<double> u3Re, u3Im;  //!< per U3 op: 4 entries + 3*4 derivs
    std::vector<double> gtRe, gtIm;  //!< transposed-gate scratch (4 entries)
    std::vector<double> w2Re, w2Im;  //!< trace contraction (4 entries)
    std::vector<double> trRe, trIm;  //!< per-lane trace accumulators

    /**
     * 64-byte-aligned base of each buffer above, set by ensure(). One
     * lane group is kLanes doubles = one cache line, so an aligned
     * base keeps every vector load/store within a single line;
     * vector<double>'s own data() is only 16-byte aligned, which
     * would split EVERY 64-byte access across two lines. The vectors
     * over-allocate by 7 doubles and these point at the first aligned
     * element (plain operator new throughout — the allocation-probe
     * tests override only the plain operators).
     */
    double *preRe = nullptr, *preIm = nullptr;
    double *bwdRe = nullptr, *bwdIm = nullptr;
    double *gRe = nullptr, *gIm = nullptr;
    double *tgRe = nullptr, *tgIm = nullptr;
    double *wRe = nullptr, *wIm = nullptr;
    double *tRe = nullptr, *tIm = nullptr;

    uint64_t allocations = 0;  //!< ensure() calls that grew a buffer
    uint64_t reuses = 0;       //!< ensure() calls served without growth

    /** Size the arena; returns true when any buffer had to grow. */
    bool ensure(size_t dim, size_t opCount, size_t u3Count);
};

/**
 * Batched counterpart of HsCost. Not safe for concurrent
 * evaluateBatch() calls on one instance; the batched multistart
 * driver owns one instance and runs on a single thread.
 */
class BatchedHsCost
{
  public:
    static constexpr size_t kLanes = kern::batch::kLanes;

    BatchedHsCost(const Matrix &target, const Ansatz &ansatz);

    /**
     * Evaluate all lanes at once. xs[l] points at lane l's parameter
     * vector (size paramCount()); a null entry marks an idle lane,
     * which is computed with all-zero parameters (identity-phase
     * U3s, always finite) and produces no output. For live lanes,
     * f[l] receives the objective and grads[l] (non-null, resized to
     * paramCount()) the analytic gradient. Allocation-free after the
     * constructor.
     */
    void evaluateBatch(const std::array<const std::vector<double> *,
                                        kLanes> &xs,
                       std::array<double, kLanes> &f,
                       const std::array<std::vector<double> *, kLanes>
                           &grads);

    int paramCount() const { return plan.nParams; }

    /** The reusable arena (test/diagnostic hook). */
    const BatchedHsWorkspace &workspace() const { return ws; }

    /** The kernel table in use (test/diagnostic hook); defaults to
     *  the process-wide dispatch, overridable for parity tests. */
    void useKernels(const kern::batch::BatchKernelSet &k) { kernels = &k; }

  private:
    double dimSquared;
    size_t dim;
    const kern::batch::BatchKernelSet *kernels;
    CompiledPlan plan;
    std::vector<double> tcRe, tcIm;  //!< conj(target), plain scalars
    Complex idleG[4];       //!< u3WithDerivatives(0,0,0): gate ...
    Complex idleDg[3][4];   //!< ... and derivatives, for idle lanes
    BatchedHsWorkspace ws;
};

} // namespace quest::synth

#endif // QUEST_SYNTH_BATCH_BATCHED_HS_COST_HH
