/**
 * @file
 * L-BFGS as an inverted-control state machine, for lane-lockstep
 * batched minimization.
 *
 * lbfgsMinimize() (synth/lbfgs.cc) owns its loop and calls the
 * objective; a batch of lockstep lanes needs the opposite: each lane
 * exposes the next point it wants evaluated, the driver evaluates
 * all lanes in one batched pass, and feeds every lane its (f,
 * gradient) pair. LbfgsMachine is that inversion — an exact
 * transcription of lbfgsMinimize's control flow (initial evaluation,
 * per-iteration budget poll, two-loop recursion, Armijo
 * backtracking with quadratic interpolation, curvature updates,
 * every tolerance and constant) where each objective call becomes a
 * queryPoint()/consume() round trip. Driven with the same objective
 * values it produces bit-identical iterates, which the parity tests
 * pin; any change here must be mirrored in lbfgs.cc and vice versa.
 *
 * The machine does not flush the lbfgs.* metrics itself: the batch
 * driver tallies calls/iterations/evaluations when a lane retires
 * (mirroring lbfgs.cc's LbfgsTally), so per-run accounting matches
 * the scalar engine's.
 */

#ifndef QUEST_SYNTH_BATCH_LBFGS_MACHINE_HH
#define QUEST_SYNTH_BATCH_LBFGS_MACHINE_HH

#include <deque>
#include <vector>

#include "synth/lbfgs.hh"

namespace quest::synth {

/** One lane's minimization in progress. */
class LbfgsMachine
{
  public:
    LbfgsMachine(std::vector<double> x0, const LbfgsOptions &options);

    /** True once the run has terminated; queryPoint() is then
     *  invalid and takeResult() is ready. */
    bool done() const { return phase == Phase::Finished; }

    /** The point to evaluate next (valid while !done()). */
    const std::vector<double> &queryPoint() const;

    /**
     * Deliver the objective value and gradient at queryPoint().
     * @p grad is swapped out (its post-call contents are
     * unspecified); the caller's buffer is reused round-robin.
     */
    void consume(double f, std::vector<double> &grad);

    /** The finished result (valid once done()). */
    LbfgsResult takeResult() { return std::move(result); }

    /** Objective evaluations consumed so far (for the retire-time
     *  metrics tally). */
    int evaluations() const { return evals; }

    /** Iterations recorded so far (for the retire-time tally). */
    int iterations() const { return result.iterations; }

  private:
    enum class Phase
    {
        AwaitInitial,  //!< waiting for f/grad at the start point
        AwaitTrial,    //!< waiting for f/grad at a line-search trial
        Finished,
    };

    struct Pair
    {
        std::vector<double> s;
        std::vector<double> y;
        double rho;
    };

    void beginIteration();
    void proposeTrial();
    void finishWithValue();

    LbfgsOptions options;
    LbfgsResult result;
    Phase phase = Phase::AwaitInitial;
    size_t n = 0;
    int evals = 0;
    int iter = 0;

    double f = 0.0;
    std::vector<double> grad;
    std::deque<Pair> history;
    std::vector<double> direction, x_new, grad_new, alpha_buf;

    // Line-search state.
    double step = 1.0;
    double dir_deriv = 0.0;
    int ls = 0;
};

} // namespace quest::synth

#endif // QUEST_SYNTH_BATCH_LBFGS_MACHINE_HH
