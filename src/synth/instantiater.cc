#include "synth/instantiater.hh"

#include <cmath>
#include <numbers>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "synth/hs_cost.hh"
#include "util/logging.hh"

namespace quest {

InstantiationResult
instantiate(const Matrix &target, const Ansatz &ansatz, Rng &rng,
            const InstantiaterOptions &options,
            const std::optional<std::vector<double>> &warm_start)
{
    QUEST_TRACE_SCOPE("synth.instantiate");
    static auto &calls =
        obs::MetricsRegistry::global().counter("synth.instantiations");
    static auto &starts_counter =
        obs::MetricsRegistry::global().counter("synth.multistarts");
    calls.increment();

    constexpr double pi = std::numbers::pi;
    HsCost cost(target, ansatz);
    const int n_params = ansatz.paramCount();

    GradObjective objective = [&](const std::vector<double> &x,
                                  std::vector<double> *grad) {
        return cost.evaluate(x, grad);
    };

    InstantiationResult best;
    best.distance = 1.0;
    double best_value = 2.0;

    for (int start = 0; start < std::max(1, options.multistarts);
         ++start) {
        starts_counter.increment();
        std::vector<double> x0(n_params);
        if (start == 0 && warm_start) {
            QUEST_ASSERT(warm_start->size() <= x0.size(),
                         "warm start larger than parameter vector");
            std::copy(warm_start->begin(), warm_start->end(), x0.begin());
            // Trailing new parameters remain zero (identity-ish U3s).
        } else {
            for (double &v : x0)
                v = rng.uniform(-pi, pi);
        }

        LbfgsResult r = lbfgsMinimize(objective, std::move(x0),
                                      options.lbfgs);
        if (r.value < best_value) {
            best_value = r.value;
            best.params = r.x;
            best.distance = std::sqrt(std::max(0.0, r.value));
        }
        if (best_value <= options.goal)
            break;
    }
    return best;
}

} // namespace quest
