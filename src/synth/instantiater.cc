#include "synth/instantiater.hh"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "synth/batch/batch_instantiate.hh"
#include "synth/batch/batch_kernels.hh"
#include "synth/hs_cost.hh"
#include "util/logging.hh"
#include "resilience/thread_pool.hh"
#include "util/names.hh"

namespace quest {

InstantiationResult
instantiate(const Matrix &target, const Ansatz &ansatz, Rng &rng,
            const InstantiaterOptions &options,
            const std::optional<std::vector<double>> &warm_start)
{
    QUEST_TRACE_SCOPE("synth.instantiate");
    static auto &calls =
        obs::MetricsRegistry::global().counter(names::kMetricSynthInstantiations);
    static auto &starts_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSynthMultistarts);
    static auto &parallel_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSynthParallelStarts);
    static auto &early_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSynthEarlyStops);
    calls.increment();

    constexpr double pi = std::numbers::pi;
    const int n_params = ansatz.paramCount();
    const int n_starts = std::max(1, options.multistarts);

    // The call-level budget bounds every start's inner loop too: the
    // L-BFGS budget becomes the tighter of its own deadline and ours,
    // and inherits our token when it has none.
    LbfgsOptions lbfgsOptions = options.lbfgs;
    lbfgsOptions.budget =
        lbfgsOptions.budget.withDeadline(options.budget.deadline);
    if (!lbfgsOptions.budget.cancel)
        lbfgsOptions.budget.cancel = options.budget.cancel;

    // Per-start RNG streams, split serially up front: stream i is the
    // same whether start i later runs on the caller or on any worker.
    std::vector<Rng> streams = rng.splitN(static_cast<size_t>(n_starts));

    std::vector<LbfgsResult> results(static_cast<size_t>(n_starts));
    std::vector<uint8_t> computed(static_cast<size_t>(n_starts), 0);

    // Lowest start index that reached the goal. Starts beyond it are
    // skippable: the serial-order reduction below never reads past the
    // earliest goal index, so dropping them cannot change the result.
    std::atomic<int> stop_at{n_starts};

    auto run_start = [&](size_t i) {
        const int idx = static_cast<int>(i);
        if (idx > stop_at.load(std::memory_order_acquire))
            return;
        if (options.budget.exhausted())
            return; // leave computed[i] == 0: the reduction stops here
        starts_counter.increment();

        // One cost object (and so one workspace) per start: evaluate
        // reuses it allocation-free across every L-BFGS iteration.
        HsCost cost(target, ansatz);
        GradObjective objective = [&cost](const std::vector<double> &x,
                                          std::vector<double> *grad) {
            return cost.evaluate(x, grad);
        };

        std::vector<double> x0(static_cast<size_t>(n_params));
        if (idx == 0 && warm_start) {
            QUEST_ASSERT(warm_start->size() <= x0.size(),
                         "warm start larger than parameter vector");
            std::copy(warm_start->begin(), warm_start->end(), x0.begin());
            // Trailing new parameters remain zero (identity-ish U3s).
        } else {
            for (double &v : x0)
                v = streams[i].uniform(-pi, pi);
        }

        LbfgsResult r =
            lbfgsMinimize(objective, std::move(x0), lbfgsOptions);
        const bool reached = r.value <= options.goal;
        results[i] = std::move(r);
        computed[i] = 1;
        if (reached) {
            int cur = stop_at.load(std::memory_order_relaxed);
            while (idx < cur &&
                   !stop_at.compare_exchange_weak(
                       cur, idx, std::memory_order_release,
                       std::memory_order_relaxed)) {
            }
        }
    };

    // The batched SIMD engine evaluates all starts lane-lockstep on
    // the calling thread; its per-lane results are bit-identical to
    // run_start's, so the shared reduction below selects the same
    // winner either way. The scalar paths stay as written: they are
    // the determinism-test reference and the QUEST_SIMD=off runtime
    // fallback.
    if (options.engine == InstantiaterEngine::Auto && n_starts > 1 &&
        kern::batch::batchEngineEnabled()) {
        synth::runBatchedMultistart(target, ansatz, streams, lbfgsOptions,
                                    options, warm_start, results, computed);
    } else if (options.pool && n_starts > 1) {
        parallel_counter.add(static_cast<uint64_t>(n_starts));
        options.pool->parallelFor(static_cast<size_t>(n_starts),
                                  run_start, options.budget.cancel);
    } else {
        for (int i = 0; i < n_starts; ++i) {
            run_start(static_cast<size_t>(i));
            if (stop_at.load(std::memory_order_relaxed) <= i)
                break;
            if (options.budget.exhausted())
                break;
        }
    }

    // Serial-order best-of reduction: walk starts in index order,
    // keep the first strict improvement, stop at the first start that
    // reached the goal — exactly the serial loop's selection, so the
    // outcome is independent of which starts ran where (or whether
    // extra starts past the goal were computed and discarded).
    InstantiationResult best;
    best.distance = 1.0;
    double best_value = 2.0;
    bool selected = false;
    for (int i = 0; i < n_starts; ++i) {
        LbfgsResult &r = results[static_cast<size_t>(i)];
        if (!computed[static_cast<size_t>(i)])
            break;  // past the earliest goal index, or budget-skipped
        // Non-finite costs (diverged starts) are never selected; a
        // NaN would also poison the < comparison below.
        if (std::isfinite(r.value) && r.value < best_value) {
            best_value = r.value;
            best.params = std::move(r.x);
            best.distance = std::sqrt(std::max(0.0, best_value));
            selected = true;
        }
        if (best_value <= options.goal) {
            if (i + 1 < n_starts)
                early_counter.increment();
            break;
        }
    }
    if (!selected) {
        // Every start diverged (or the budget fired before any
        // completed). Return a well-formed parameter vector — callers
        // feed it straight into Ansatz::instantiate — with an
        // infinite distance so no threshold can ever admit it.
        best.params.assign(static_cast<size_t>(n_params), 0.0);
        best.distance = std::numeric_limits<double>::infinity();
    }
    return best;
}

} // namespace quest
