#include "synth/ansatz.hh"

#include <algorithm>
#include <cmath>

#include "synth/kernels.hh"
#include "util/logging.hh"

namespace quest {

Matrix
u3Derivative(double theta, double phi, double lambda, int which)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const Complex eip = std::polar(1.0, phi);
    const Complex eil = std::polar(1.0, lambda);
    const Complex i(0.0, 1.0);

    Matrix d(2, 2);
    switch (which) {
      case 0:  // d/d theta
        d(0, 0) = Complex(-s / 2.0, 0.0);
        d(0, 1) = -eil * (c / 2.0);
        d(1, 0) = eip * (c / 2.0);
        d(1, 1) = eip * eil * (-s / 2.0);
        break;
      case 1:  // d/d phi
        d(1, 0) = i * eip * s;
        d(1, 1) = i * eip * eil * c;
        break;
      case 2:  // d/d lambda
        d(0, 1) = -i * eil * s;
        d(1, 1) = i * eip * eil * c;
        break;
      default:
        QUEST_PANIC("bad U3 parameter index");
    }
    return d;
}

void
makeU3Entries(double theta, double phi, double lambda, Complex g[4])
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const Complex eil = std::polar(1.0, lambda);
    const Complex eip = std::polar(1.0, phi);
    g[0] = Complex(c, 0.0);
    g[1] = -eil * s;
    g[2] = eip * s;
    g[3] = eip * eil * c;
}

void
u3WithDerivatives(double theta, double phi, double lambda, Complex g[4],
                  Complex dg[3][4])
{
    // This runs once per U3 op per cost evaluation (and once per op
    // per LANE in the batched engine) and the three argument
    // reductions dominate it, so fuse each sin/cos pair into one
    // sincos where libm provides it. glibc's sincos evaluates the
    // same kernels as sin and cos, so the values — and therefore the
    // scalar/batched engine parity — are unchanged.
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
    double c, s, cl, sl, cp, sp;
    ::sincos(theta / 2.0, &s, &c);
    ::sincos(lambda, &sl, &cl);
    ::sincos(phi, &sp, &cp);
    const Complex eil(cl, sl);
    const Complex eip(cp, sp);
#else
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const Complex eil = std::polar(1.0, lambda);
    const Complex eip = std::polar(1.0, phi);
#endif
    const Complex eipl = eip * eil;
    const Complex i(0.0, 1.0);
    const Complex zero(0.0, 0.0);

    g[0] = Complex(c, 0.0);
    g[1] = -eil * s;
    g[2] = eip * s;
    g[3] = eipl * c;

    // d/d theta
    dg[0][0] = Complex(-s / 2.0, 0.0);
    dg[0][1] = -eil * (c / 2.0);
    dg[0][2] = eip * (c / 2.0);
    dg[0][3] = eipl * (-s / 2.0);
    // d/d phi
    dg[1][0] = zero;
    dg[1][1] = zero;
    dg[1][2] = i * eip * s;
    dg[1][3] = i * eipl * c;
    // d/d lambda
    dg[2][0] = zero;
    dg[2][1] = -i * eil * s;
    dg[2][2] = zero;
    dg[2][3] = i * eipl * c;
}

Ansatz::Ansatz(int n_qubits)
    : nQubits(n_qubits)
{
    QUEST_ASSERT(n_qubits >= 1 && n_qubits <= 6,
                 "ansatz width out of range: ", n_qubits);
}

Ansatz
Ansatz::initialLayer(int n_qubits)
{
    Ansatz a(n_qubits);
    for (int q = 0; q < n_qubits; ++q)
        a.addU3(q);
    return a;
}

void
Ansatz::addU3(int q)
{
    QUEST_ASSERT(q >= 0 && q < nQubits, "U3 wire out of range");
    ops.push_back({false, q, -1});
    ++u3Count;
}

void
Ansatz::addCx(int control, int target)
{
    QUEST_ASSERT(control >= 0 && control < nQubits && target >= 0 &&
                 target < nQubits && control != target,
                 "bad CX wires");
    ops.push_back({true, control, target});
    ++cxCount;
}

void
Ansatz::addLayer(int a, int b)
{
    addCx(a, b);
    addU3(a);
    addU3(b);
}

Circuit
Ansatz::instantiate(const std::vector<double> &params) const
{
    QUEST_ASSERT(static_cast<int>(params.size()) == paramCount(),
                 "parameter count mismatch");
    Circuit c(nQubits);
    size_t p = 0;
    for (const Op &op : ops) {
        if (op.isCx) {
            c.append(Gate::cx(op.a, op.b));
        } else {
            c.append(Gate::u3(op.a, params[p], params[p + 1],
                              params[p + 2]));
            p += 3;
        }
    }
    return c;
}

Matrix
Ansatz::unitary(const std::vector<double> &params) const
{
    QUEST_ASSERT(static_cast<int>(params.size()) == paramCount(),
                 "parameter count mismatch");
    const size_t dim = size_t{1} << nQubits;
    const kern::KernelSet &k = kern::kernelsForDim(dim);
    Matrix u = Matrix::identity(dim);
    Complex *data = u.data().data();
    Complex g[4];
    size_t p = 0;
    for (const Op &op : ops) {
        if (op.isCx) {
            k.leftCx(dim, data, wireBit(op.a), wireBit(op.b));
        } else {
            makeU3Entries(params[p], params[p + 1], params[p + 2], g);
            k.leftU3(dim, data, g, wireBit(op.a));
            p += 3;
        }
    }
    return u;
}

void
Ansatz::unitaryAndGradient(const std::vector<double> &params, Matrix &u,
                           std::vector<Matrix> &grads) const
{
    QUEST_ASSERT(static_cast<int>(params.size()) == paramCount(),
                 "parameter count mismatch");
    const size_t dim = size_t{1} << nQubits;
    const size_t dd = dim * dim;
    const size_t count = ops.size();
    const kern::KernelSet &k = kern::kernelsForDim(dim);

    // Forward pass: prefix products, stacked in one flat arena
    // (slice j holds op_{j-1} ... op_0) instead of count + 1
    // separately built matrices.
    std::vector<Complex> prefix((count + 1) * dd, Complex(0.0, 0.0));
    std::vector<int> param_base(count, -1);
    for (size_t i = 0; i < dim; ++i)
        prefix[i * dim + i] = Complex(1.0, 0.0);
    {
        int p = 0;
        Complex g[4];
        for (size_t j = 0; j < count; ++j) {
            param_base[j] = p;
            Complex *cur = prefix.data() + j * dd;
            Complex *nxt = cur + dd;
            std::copy(cur, cur + dd, nxt);
            if (ops[j].isCx) {
                k.leftCx(dim, nxt, wireBit(ops[j].a), wireBit(ops[j].b));
            } else {
                makeU3Entries(params[p], params[p + 1], params[p + 2], g);
                k.leftU3(dim, nxt, g, wireBit(ops[j].a));
                p += 3;
            }
        }
    }
    u = Matrix(dim, dim);
    std::copy(prefix.data() + count * dd, prefix.data() + (count + 1) * dd,
              u.data().data());

    grads.assign(paramCount(), Matrix());

    // Backward pass: maintain the suffix product in place (right-apply
    // kernels) while emitting the three U3 partials at each
    // parameterized op as suffix * embed(d) * prefix[j].
    Matrix suffix = Matrix::identity(dim);
    Complex g[4], dg[3][4];
    for (size_t j = count; j-- > 0;) {
        if (!ops[j].isCx) {
            const int base = param_base[j];
            const size_t bit = wireBit(ops[j].a);
            u3WithDerivatives(params[base], params[base + 1],
                              params[base + 2], g, dg);
            for (int which = 0; which < 3; ++which) {
                Matrix t(dim, dim);
                std::copy(prefix.data() + j * dd,
                          prefix.data() + (j + 1) * dd, t.data().data());
                k.leftU3(dim, t.data().data(), dg[which], bit);
                grads[base + which] = suffix * t;
            }
            k.rightU3(dim, suffix.data().data(), g, bit);
        } else {
            k.rightCx(dim, suffix.data().data(), wireBit(ops[j].a),
                      wireBit(ops[j].b));
        }
    }
}

} // namespace quest
