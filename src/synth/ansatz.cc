#include "synth/ansatz.hh"

#include <cmath>

#include "linalg/decompose.hh"
#include "linalg/embed.hh"
#include "util/logging.hh"

namespace quest {

Matrix
u3Derivative(double theta, double phi, double lambda, int which)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    const Complex eip = std::polar(1.0, phi);
    const Complex eil = std::polar(1.0, lambda);
    const Complex i(0.0, 1.0);

    Matrix d(2, 2);
    switch (which) {
      case 0:  // d/d theta
        d(0, 0) = Complex(-s / 2.0, 0.0);
        d(0, 1) = -eil * (c / 2.0);
        d(1, 0) = eip * (c / 2.0);
        d(1, 1) = eip * eil * (-s / 2.0);
        break;
      case 1:  // d/d phi
        d(1, 0) = i * eip * s;
        d(1, 1) = i * eip * eil * c;
        break;
      case 2:  // d/d lambda
        d(0, 1) = -i * eil * s;
        d(1, 1) = i * eip * eil * c;
        break;
      default:
        QUEST_PANIC("bad U3 parameter index");
    }
    return d;
}

Ansatz::Ansatz(int n_qubits)
    : nQubits(n_qubits)
{
    QUEST_ASSERT(n_qubits >= 1 && n_qubits <= 6,
                 "ansatz width out of range: ", n_qubits);
}

Ansatz
Ansatz::initialLayer(int n_qubits)
{
    Ansatz a(n_qubits);
    for (int q = 0; q < n_qubits; ++q)
        a.addU3(q);
    return a;
}

void
Ansatz::addU3(int q)
{
    QUEST_ASSERT(q >= 0 && q < nQubits, "U3 wire out of range");
    ops.push_back({false, q, -1});
    ++u3Count;
}

void
Ansatz::addCx(int control, int target)
{
    QUEST_ASSERT(control >= 0 && control < nQubits && target >= 0 &&
                 target < nQubits && control != target,
                 "bad CX wires");
    ops.push_back({true, control, target});
    ++cxCount;
}

void
Ansatz::addLayer(int a, int b)
{
    addCx(a, b);
    addU3(a);
    addU3(b);
}

Circuit
Ansatz::instantiate(const std::vector<double> &params) const
{
    QUEST_ASSERT(static_cast<int>(params.size()) == paramCount(),
                 "parameter count mismatch");
    Circuit c(nQubits);
    size_t p = 0;
    for (const Op &op : ops) {
        if (op.isCx) {
            c.append(Gate::cx(op.a, op.b));
        } else {
            c.append(Gate::u3(op.a, params[p], params[p + 1],
                              params[p + 2]));
            p += 3;
        }
    }
    return c;
}

Matrix
Ansatz::opMatrix(const Op &op, const std::vector<double> &params,
                 int param_base) const
{
    if (op.isCx) {
        return embedUnitary(gateMatrix(Gate::cx(0, 1)), {op.a, op.b},
                            nQubits);
    }
    return embedUnitary(makeU3(params[param_base], params[param_base + 1],
                               params[param_base + 2]),
                        {op.a}, nQubits);
}

Matrix
Ansatz::unitary(const std::vector<double> &params) const
{
    QUEST_ASSERT(static_cast<int>(params.size()) == paramCount(),
                 "parameter count mismatch");
    Matrix u = Matrix::identity(size_t{1} << nQubits);
    int p = 0;
    for (const Op &op : ops) {
        u = opMatrix(op, params, p) * u;
        if (!op.isCx)
            p += 3;
    }
    return u;
}

void
Ansatz::unitaryAndGradient(const std::vector<double> &params, Matrix &u,
                           std::vector<Matrix> &grads) const
{
    QUEST_ASSERT(static_cast<int>(params.size()) == paramCount(),
                 "parameter count mismatch");
    const size_t dim = size_t{1} << nQubits;
    const size_t count = ops.size();

    // Forward pass: embedded op matrices and prefix products.
    std::vector<Matrix> embedded(count);
    std::vector<Matrix> prefix(count + 1);
    std::vector<int> param_base(count, -1);
    prefix[0] = Matrix::identity(dim);
    {
        int p = 0;
        for (size_t j = 0; j < count; ++j) {
            param_base[j] = p;
            embedded[j] = opMatrix(ops[j], params, p);
            prefix[j + 1] = embedded[j] * prefix[j];
            if (!ops[j].isCx)
                p += 3;
        }
    }
    u = prefix[count];

    grads.assign(paramCount(), Matrix());

    // Backward pass: maintain the suffix product while emitting the
    // three U3 partials at each parameterized op.
    Matrix suffix = Matrix::identity(dim);
    for (size_t j = count; j-- > 0;) {
        if (!ops[j].isCx) {
            const int base = param_base[j];
            for (int which = 0; which < 3; ++which) {
                Matrix d = u3Derivative(params[base], params[base + 1],
                                        params[base + 2], which);
                grads[base + which] =
                    suffix * (embedUnitary(d, {ops[j].a}, nQubits) *
                              prefix[j]);
            }
        }
        suffix = suffix * embedded[j];
    }
}

} // namespace quest
