#include "synth/kernels.hh"

#include "util/logging.hh"

namespace quest::kern {

namespace {

/**
 * Core loop bodies, written once over a runtime dimension. The
 * specialized entry points below call them with a compile-time
 * constant, which the inliner propagates so the dim-2/4 loops unroll
 * completely and the dim-8/16 loops vectorize with known trip counts.
 *
 * Half-index enumeration: for h in [0, dim/2), the row (column) index
 * with the wire bit clear is r0 = ((h & ~(bit-1)) << 1) | (h & (bit-1))
 * and its partner is r0 | bit — no per-iteration skip branch.
 */

inline void
leftU3Body(size_t dim, Complex *QUEST_RESTRICT m,
           const Complex *QUEST_RESTRICT g, size_t bit)
{
    const Complex g00 = g[0], g01 = g[1], g10 = g[2], g11 = g[3];
    const size_t lo = bit - 1;
    for (size_t h = 0; h < dim / 2; ++h) {
        const size_t r0 = ((h & ~lo) << 1) | (h & lo);
        Complex *QUEST_RESTRICT row0 = m + r0 * dim;
        Complex *QUEST_RESTRICT row1 = m + (r0 | bit) * dim;
        for (size_t c = 0; c < dim; ++c) {
            const Complex a = row0[c], b = row1[c];
            row0[c] = cmul(g00, a) + cmul(g01, b);
            row1[c] = cmul(g10, a) + cmul(g11, b);
        }
    }
}

inline void
rightU3Body(size_t dim, Complex *QUEST_RESTRICT m,
            const Complex *QUEST_RESTRICT g, size_t bit)
{
    const Complex g00 = g[0], g01 = g[1], g10 = g[2], g11 = g[3];
    const size_t lo = bit - 1;
    for (size_t r = 0; r < dim; ++r) {
        Complex *QUEST_RESTRICT row = m + r * dim;
        for (size_t h = 0; h < dim / 2; ++h) {
            const size_t c0 = ((h & ~lo) << 1) | (h & lo);
            const Complex a = row[c0], b = row[c0 | bit];
            row[c0] = cmul(a, g00) + cmul(b, g10);
            row[c0 | bit] = cmul(a, g01) + cmul(b, g11);
        }
    }
}

inline void
leftCxBody(size_t dim, Complex *QUEST_RESTRICT m, size_t bc, size_t bt)
{
    for (size_t r = 0; r < dim; ++r) {
        if ((r & bc) && !(r & bt)) {
            Complex *QUEST_RESTRICT row0 = m + r * dim;
            Complex *QUEST_RESTRICT row1 = m + (r | bt) * dim;
            for (size_t c = 0; c < dim; ++c) {
                const Complex tmp = row0[c];
                row0[c] = row1[c];
                row1[c] = tmp;
            }
        }
    }
}

inline void
rightCxBody(size_t dim, Complex *QUEST_RESTRICT m, size_t bc, size_t bt)
{
    for (size_t r = 0; r < dim; ++r) {
        Complex *QUEST_RESTRICT row = m + r * dim;
        for (size_t c = 0; c < dim; ++c) {
            if ((c & bc) && !(c & bt)) {
                const Complex tmp = row[c];
                row[c] = row[c | bt];
                row[c | bt] = tmp;
            }
        }
    }
}

inline void
reduceTraceTBody(size_t dim, const Complex *QUEST_RESTRICT p,
                 const Complex *QUEST_RESTRICT bt, size_t bit,
                 Complex *QUEST_RESTRICT w2)
{
    Complex w00(0.0, 0.0), w01(0.0, 0.0), w10(0.0, 0.0), w11(0.0, 0.0);
    const size_t lo = bit - 1;
    for (size_t h = 0; h < dim / 2; ++h) {
        const size_t r0 = ((h & ~lo) << 1) | (h & lo);
        const Complex *QUEST_RESTRICT p0 = p + r0 * dim;
        const Complex *QUEST_RESTRICT p1 = p + (r0 | bit) * dim;
        const Complex *QUEST_RESTRICT b0 = bt + r0 * dim;
        const Complex *QUEST_RESTRICT b1 = bt + (r0 | bit) * dim;
        // Four dot products in one pass so every load feeds two
        // mul-adds.
        for (size_t c = 0; c < dim; ++c) {
            const Complex pa = p0[c], pb = p1[c];
            const Complex ba = b0[c], bb = b1[c];
            w00 += cmul(pa, ba);
            w01 += cmul(pa, bb);
            w10 += cmul(pb, ba);
            w11 += cmul(pb, bb);
        }
    }
    w2[0] = w00;
    w2[1] = w01;
    w2[2] = w10;
    w2[3] = w11;
}

/** Compile-time-dimension entry points (D propagates into the body). */
template <size_t D>
void
leftU3Fixed(size_t, Complex *m, const Complex *g, size_t bit)
{
    leftU3Body(D, m, g, bit);
}

template <size_t D>
void
rightU3Fixed(size_t, Complex *m, const Complex *g, size_t bit)
{
    rightU3Body(D, m, g, bit);
}

template <size_t D>
void
leftCxFixed(size_t, Complex *m, size_t bc, size_t bt)
{
    leftCxBody(D, m, bc, bt);
}

template <size_t D>
void
rightCxFixed(size_t, Complex *m, size_t bc, size_t bt)
{
    rightCxBody(D, m, bc, bt);
}

template <size_t D>
void
reduceTraceTFixed(size_t, const Complex *p, const Complex *bt, size_t bit,
                  Complex *w2)
{
    reduceTraceTBody(D, p, bt, bit, w2);
}

template <size_t D>
constexpr KernelSet
makeFixedSet()
{
    return {&leftU3Fixed<D>, &rightU3Fixed<D>, &leftCxFixed<D>,
            &rightCxFixed<D>, &reduceTraceTFixed<D>};
}

constexpr KernelSet kGenericSet = {&leftU3Body, &rightU3Body, &leftCxBody,
                                   &rightCxBody, &reduceTraceTBody};

constexpr KernelSet kSet2 = makeFixedSet<2>();
constexpr KernelSet kSet4 = makeFixedSet<4>();
constexpr KernelSet kSet8 = makeFixedSet<8>();
constexpr KernelSet kSet16 = makeFixedSet<16>();

} // namespace

const KernelSet &
kernelsForDim(size_t dim)
{
    QUEST_ASSERT(dim >= 2 && (dim & (dim - 1)) == 0,
                 "kernel dimension must be a power of two >= 2, got ",
                 dim);
    switch (dim) {
      case 2:
        return kSet2;
      case 4:
        return kSet4;
      case 8:
        return kSet8;
      case 16:
        return kSet16;
      default:
        return kGenericSet;
    }
}

} // namespace quest::kern
