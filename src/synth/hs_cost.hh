/**
 * @file
 * Hilbert-Schmidt synthesis cost function with analytic gradient.
 *
 * This is the innermost loop of numerical instantiation: L-BFGS calls
 * evaluate() thousands of times per multistart. The implementation is
 * built for that: a reusable flat workspace (HsWorkspace) sized once
 * at construction, per-dimension unrolled kernels dispatched once
 * (synth/kernels.hh), and a per-op cache of U3 entries + derivatives
 * computed from a single trig evaluation — so evaluate() performs no
 * heap allocation in steady state, on both the value-only and the
 * gradient path.
 */

#ifndef QUEST_SYNTH_HS_COST_HH
#define QUEST_SYNTH_HS_COST_HH

#include <cstdint>
#include <vector>

#include "linalg/matrix.hh"
#include "synth/ansatz.hh"
#include "synth/kernels.hh"
#include "synth/op_plan.hh"

namespace quest {

/**
 * Flat scratch arena reused across evaluate() calls: the forward
 * prefix stack, the (transposed) backward accumulator, a value-only
 * running product, and the per-op U3 entry/derivative cache. All
 * buffers are sized once; ensure() only grows, and steady-state calls
 * never touch the allocator.
 */
struct HsWorkspace
{
    std::vector<Complex> prefix;    //!< (opCount + 1) stacked dim*dim slices
    std::vector<Complex> backward;  //!< transposed suffix accumulator
    std::vector<Complex> scratch;   //!< value-only running product
    std::vector<Complex> u3Terms;   //!< per U3 op: 4 entries + 3*4 derivatives

    uint64_t allocations = 0;  //!< ensure() calls that grew a buffer
    uint64_t reuses = 0;       //!< ensure() calls served without growth

    /** Size the arena for a dim x dim problem with the given op and
     *  U3 counts. Returns true when any buffer had to grow. */
    bool ensure(size_t dim, size_t opCount, size_t u3Count);
};

/**
 * Smooth objective f(theta) = 1 - |Tr(U^dagger A(theta))|^2 / N^2,
 * whose square root is the paper's HS process distance. Minimizing f
 * minimizes the distance; the gradient is computed analytically from
 * the ansatz parameter derivatives.
 *
 * Not safe for concurrent evaluate() calls on one instance: the
 * internal workspace is reused across calls. Parallel multistarts
 * construct one HsCost per start (see synth/instantiater.cc).
 */
class HsCost
{
  public:
    HsCost(const Matrix &target, const Ansatz &ansatz);

    /** Objective value; fills @p grad (same size as params) if
     *  non-null. Allocation-free after the constructor. */
    double evaluate(const std::vector<double> &params,
                    std::vector<double> *grad) const;

    /** HS distance sqrt(max(0, f)) at the given parameters. */
    double distance(const std::vector<double> &params) const;

    /** The reusable arena (test/diagnostic hook). */
    const HsWorkspace &workspace() const { return ws; }

  private:
    Complex traceAgainstTarget(const Complex *u) const;

    const Matrix &target;
    const Ansatz &ansatz;
    double dimSquared;
    size_t dim;
    size_t u3Count;
    int nParams;
    const kern::KernelSet *kernels;
    std::vector<synth::OpPlan> plan;
    std::vector<Complex> targetConj;  //!< conj(target): trace + backward init
    mutable HsWorkspace ws;
};

} // namespace quest

#endif // QUEST_SYNTH_HS_COST_HH
