/**
 * @file
 * Hilbert-Schmidt synthesis cost function with analytic gradient.
 */

#ifndef QUEST_SYNTH_HS_COST_HH
#define QUEST_SYNTH_HS_COST_HH

#include <vector>

#include "linalg/matrix.hh"
#include "synth/ansatz.hh"

namespace quest {

/**
 * Smooth objective f(theta) = 1 - |Tr(U^dagger A(theta))|^2 / N^2,
 * whose square root is the paper's HS process distance. Minimizing f
 * minimizes the distance; the gradient is computed analytically from
 * the ansatz parameter derivatives.
 */
class HsCost
{
  public:
    HsCost(const Matrix &target, const Ansatz &ansatz);

    /** Objective value; fills @p grad (same size as params) if
     *  non-null. */
    double evaluate(const std::vector<double> &params,
                    std::vector<double> *grad) const;

    /** HS distance sqrt(max(0, f)) at the given parameters. */
    double distance(const std::vector<double> &params) const;

  private:
    const Matrix &target;
    const Ansatz &ansatz;
    double dimSquared;
};

} // namespace quest

#endif // QUEST_SYNTH_HS_COST_HH
