#include "synth/lbfgs.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest {

namespace {

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

double
infNorm(const std::vector<double> &v)
{
    double worst = 0.0;
    for (double x : v)
        worst = std::max(worst, std::abs(x));
    return worst;
}

/** Flush one call's iteration/evaluation tallies to the metrics
 *  registry on every exit path. */
class LbfgsTally
{
  public:
    int evaluations = 0;
    const int *iterations = nullptr;

    ~LbfgsTally()
    {
        static auto &calls =
            obs::MetricsRegistry::global().counter(names::kMetricLbfgsCalls);
        static auto &iters =
            obs::MetricsRegistry::global().counter(names::kMetricLbfgsIterations);
        static auto &evals = obs::MetricsRegistry::global().counter(
            names::kMetricLbfgsEvaluations);
        static auto &iter_hist =
            obs::MetricsRegistry::global().histogram(
                names::kMetricLbfgsIterationsPerCall);
        calls.increment();
        evals.add(static_cast<uint64_t>(evaluations));
        if (iterations) {
            iters.add(static_cast<uint64_t>(*iterations));
            iter_hist.record(static_cast<uint64_t>(*iterations));
        }
    }
};

} // namespace

LbfgsResult
lbfgsMinimize(const GradObjective &objective, std::vector<double> x0,
              const LbfgsOptions &options)
{
    const size_t n = x0.size();
    LbfgsResult result;
    result.x = std::move(x0);

    LbfgsTally tally;
    tally.iterations = &result.iterations;

    std::vector<double> grad(n);
    double f = objective(result.x, &grad);
    ++tally.evaluations;

    if (!std::isfinite(f)) {
        // A non-finite objective at the starting point cannot be
        // optimized (every Armijo test would fail); report it as a
        // diverged run instead of comparing against NaN below.
        static auto &nonfinite = obs::MetricsRegistry::global().counter(
            names::kMetricLbfgsNonfiniteObjectives);
        nonfinite.increment();
        result.value = std::numeric_limits<double>::infinity();
        return result;
    }

    if (n == 0) {
        result.value = f;
        result.converged = true;
        return result;
    }

    // History of (s, y, rho) pairs for the two-loop recursion.
    struct Pair
    {
        std::vector<double> s;
        std::vector<double> y;
        double rho;
    };
    std::deque<Pair> history;

    std::vector<double> direction(n), x_new(n), grad_new(n), alpha_buf;

    for (int iter = 0; iter < options.maxIterations; ++iter) {
        // The per-iteration safe point: a cancelled or overdue run
        // stops here with the best point found so far.
        const resilience::StopReason stop = options.budget.stop();
        if (stop != resilience::StopReason::None) {
            result.stopped = stop;
            break;
        }

        result.iterations = iter + 1;
        if (infNorm(grad) < options.gradTolerance) {
            result.converged = true;
            break;
        }

        // Two-loop recursion: direction = -H g.
        direction = grad;
        alpha_buf.assign(history.size(), 0.0);
        for (size_t h = history.size(); h-- > 0;) {
            const Pair &p = history[h];
            double a = p.rho * dot(p.s, direction);
            alpha_buf[h] = a;
            for (size_t i = 0; i < n; ++i)
                direction[i] -= a * p.y[i];
        }
        if (!history.empty()) {
            const Pair &last = history.back();
            double gamma = dot(last.s, last.y) / dot(last.y, last.y);
            for (double &d : direction)
                d *= gamma;
        }
        for (size_t h = 0; h < history.size(); ++h) {
            const Pair &p = history[h];
            double beta = p.rho * dot(p.y, direction);
            for (size_t i = 0; i < n; ++i)
                direction[i] += p.s[i] * (alpha_buf[h] - beta);
        }
        for (double &d : direction)
            d = -d;

        double dir_deriv = dot(grad, direction);
        if (dir_deriv >= 0.0) {
            // Not a descent direction: reset to steepest descent.
            history.clear();
            for (size_t i = 0; i < n; ++i)
                direction[i] = -grad[i];
            dir_deriv = -dot(grad, grad);
        }

        // Backtracking Armijo line search with quadratic
        // interpolation: fit f(step) ~ quadratic through f(0), f'(0)
        // and the rejected trial to pick the next step.
        constexpr double c1 = 1e-4;
        double step = 1.0;
        double f_new = f;
        bool improved = false;
        for (int ls = 0; ls < 40; ++ls) {
            for (size_t i = 0; i < n; ++i)
                x_new[i] = result.x[i] + step * direction[i];
            f_new = objective(x_new, &grad_new);
            ++tally.evaluations;
            if (f_new <= f + c1 * step * dir_deriv) {
                improved = true;
                break;
            }
            double denom = 2.0 * (f_new - f - dir_deriv * step);
            double interpolated =
                denom > 0.0 ? -dir_deriv * step * step / denom
                            : 0.5 * step;
            step = std::clamp(interpolated, 0.1 * step, 0.5 * step);
        }
        if (!improved) {
            result.converged = infNorm(grad) < 1e-6;
            break;
        }

        // Curvature update.
        Pair p;
        p.s.resize(n);
        p.y.resize(n);
        for (size_t i = 0; i < n; ++i) {
            p.s[i] = x_new[i] - result.x[i];
            p.y[i] = grad_new[i] - grad[i];
        }
        double sy = dot(p.s, p.y);
        if (sy > 1e-12) {
            p.rho = 1.0 / sy;
            history.push_back(std::move(p));
            if (static_cast<int>(history.size()) > options.historySize)
                history.pop_front();
        }

        double f_old = f;
        result.x = x_new;
        grad = grad_new;
        f = f_new;

        if (std::abs(f_old - f) <=
            options.valueTolerance * std::max(1.0, std::abs(f_old))) {
            result.converged = true;
            break;
        }
    }

    result.value = f;
    return result;
}

} // namespace quest
