/**
 * @file
 * QSearch/LEAP layer-by-layer synthesis compiler (STEP 2, Sec. 3.5).
 *
 * The compiler grows a circuit tree one layer (CNOT + two U3s) at a
 * time, numerically instantiating every placement, and — as modified
 * by QUEST — records the best M candidate circuits at every CNOT
 * count level instead of only the single best leaf. LEAP's prefix
 * reseeding periodically collapses the frontier to its best node to
 * bound tree growth.
 */

#ifndef QUEST_SYNTH_LEAP_SYNTHESIZER_HH
#define QUEST_SYNTH_LEAP_SYNTHESIZER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "ir/circuit.hh"
#include "linalg/matrix.hh"
#include "resilience/budget.hh"
#include "synth/instantiater.hh"

namespace quest {

class SynthCacheHook;
class ThreadPool;

/** Synthesis settings. */
struct SynthConfig
{
    /** HS distance below which a solution counts as exact. */
    double exactEpsilon = 1e-5;

    /** Frontier nodes kept per depth. */
    int beamWidth = 2;

    /** LEAP prefix-reseed interval (layers). */
    int reseedInterval = 4;

    /** Candidates recorded per CNOT-count level. */
    int candidatesPerLevel = 8;

    /** Extra levels explored after reaching exactEpsilon, so that
     *  above-minimum CNOT counts are also represented (Sec. 3.5). */
    int extraLevels = 2;

    /** Hard cap on layer levels regardless of the CNOT budget. */
    int maxLayers = 16;

    /** Stop after this many levels without relative improvement
     *  (floored at one brickwork round, 2 * (n - 1) levels). */
    int stallLevels = 6;

    /** Instantiation (multi-start L-BFGS) settings. */
    InstantiaterOptions inst;

    /**
     * Allowed CNOT placements (undirected pairs over the block's
     * local wires). Empty means all-to-all; a non-empty list makes
     * synthesis topology-aware, as the Leap compiler is on real
     * devices.
     */
    std::vector<std::pair<int, int>> couplings;

    /** Structurally verify every emitted candidate (native gate set,
     *  wires in range, finite angles; see src/verify). A failure is
     *  a synthesizer bug and panics. Defaults on in debug builds. */
#ifdef NDEBUG
    bool verifyCandidates = false;
#else
    bool verifyCandidates = true;
#endif

    /** RNG seed for instantiation restarts. */
    uint64_t seed = 1;

    /** Worker threads for per-level instantiations (1 = serial).
     *  Ignored when @ref pool is set. Results are deterministic
     *  regardless of the thread count. */
    unsigned threads = 1;

    /**
     * Shared worker pool for per-level instantiations. When set, the
     * synthesizer uses it instead of spawning its own threads, so one
     * pool bounds the whole process even when many synthesize() calls
     * run concurrently (the pool's parallelFor is cooperative: callers
     * claim work themselves, nested use cannot deadlock). Not owned.
     */
    ThreadPool *pool = nullptr;

    /**
     * Persistent synthesis-result store (see synth/synth_cache.hh).
     * Consulted before searching and updated afterwards; entries that
     * fail deep validation are invalidated and re-synthesized. Not
     * owned; nullptr disables persistent caching.
     */
    SynthCacheHook *cache = nullptr;

    /**
     * Deadline/cancellation for one synthesize() call, polled at
     * every level boundary and threaded into the instantiation inner
     * loops. When it fires, synthesize() throws a QuestError
     * (Timeout/Cancelled) instead of returning a truncated output —
     * and never caches one: results are only stored when the budget
     * survived the whole search, which (exhaustion being monotone)
     * guarantees every cached entry is complete and deterministic.
     * Deliberately NOT part of the synthesis cache key.
     */
    resilience::Budget budget;
};

/** One synthesized circuit for a block. */
struct SynthCandidate
{
    Circuit circuit;       //!< native {U3, CX} circuit on block wires
    double distance = 1.0; //!< HS distance to the target unitary
    int cnotCount = 0;
};

/** Everything the compiler produced for one target. */
struct SynthOutput
{
    /** All recorded candidates, ordered by (cnotCount, distance). */
    std::vector<SynthCandidate> candidates;

    /** Index of the lowest-distance candidate. */
    size_t bestIndex = 0;

    const SynthCandidate &best() const { return candidates[bestIndex]; }
};

/** The synthesis compiler. */
class LeapSynthesizer
{
  public:
    explicit LeapSynthesizer(SynthConfig config = {});

    /**
     * Approximate synthesis: explore layer levels up to @p max_cnots
     * CNOTs (the original block's CNOT count in the QUEST pipeline)
     * and record candidates at every level.
     *
     * @param skeleton optional CX pair sequence of the original
     *        circuit; when given, an extra lineage follows it so the
     *        search always contains the original structure's
     *        prefixes (and can recover the original exactly).
     */
    SynthOutput synthesize(const Matrix &target, int max_cnots,
                           const std::vector<std::pair<int, int>>
                               *skeleton = nullptr) const;

    /**
     * Exact synthesis: the shortest recorded candidate whose distance
     * is below @p epsilon, or the overall best if none reaches it.
     */
    SynthCandidate synthesizeExact(const Matrix &target, double epsilon,
                                   int max_cnots) const;

    const SynthConfig &config() const { return cfg; }

  private:
    SynthConfig cfg;
};

} // namespace quest

#endif // QUEST_SYNTH_LEAP_SYNTHESIZER_HH
