/**
 * @file
 * Persistent synthesis-result caching: the hook interface the
 * synthesizer talks to and the content-addressed key derivation.
 *
 * Per-block numerical synthesis dominates QUEST's compilation cost
 * (paper Sec. 6, Fig. 12), and identical block unitaries recur both
 * within a circuit (repeated Trotter steps) and across runs. The
 * in-run recurrence is handled by the pipeline's in-memory dedup;
 * this hook extends it across processes: the synthesizer consults the
 * hook before searching and stores what it finds afterwards.
 *
 * The concrete disk-backed store lives in src/cache (it depends on
 * quest_synth, not the other way around); anything implementing
 * SynthCacheHook can be plugged in via SynthConfig::cache.
 */

#ifndef QUEST_SYNTH_SYNTH_CACHE_HH
#define QUEST_SYNTH_SYNTH_CACHE_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "synth/leap_synthesizer.hh"

namespace quest {

/**
 * Storage backend for synthesis results, keyed by the hex digest
 * from synthesisCacheKey. Implementations must never throw out of
 * these methods and must treat unreadable or damaged entries as
 * absent: a cache can only ever make a run faster, not wrong.
 */
class SynthCacheHook
{
  public:
    virtual ~SynthCacheHook() = default;

    /** The stored output for @p key, or nullopt. */
    virtual std::optional<SynthOutput> load(const std::string &key) = 0;

    /** Persist @p out under @p key (best effort). */
    virtual void store(const std::string &key,
                       const SynthOutput &out) = 0;

    /** Drop @p key (e.g. an entry that failed deep validation). */
    virtual void invalidate(const std::string &key) = 0;
};

/**
 * Content-addressed cache key: the SHA-256 hex digest of the exact
 * synthesize() inputs — the target unitary's raw bytes, the CNOT
 * budget, the optional skeleton, and every SynthConfig field that
 * influences the result (thresholds, search shape, instantiater and
 * L-BFGS settings, couplings, seed) — plus a format tag bumped
 * whenever the synthesis algorithm changes meaning. Fields that
 * cannot change the output (thread count, verification flags, the
 * cache pointers themselves) are excluded, so e.g. a --threads
 * change still hits. The exact byte layout is specified in
 * docs/FORMATS.md.
 */
std::string
synthesisCacheKey(const Matrix &target, int max_cnots,
                  const std::vector<std::pair<int, int>> *skeleton,
                  const SynthConfig &cfg);

} // namespace quest

#endif // QUEST_SYNTH_SYNTH_CACHE_HH
