/**
 * @file
 * Parameterized circuit templates for numerical synthesis.
 *
 * A synthesis layer is a CNOT followed by U3 gates on both wires
 * (Fig. 5 of the paper); an ansatz is a fixed gate structure whose U3
 * angles are free parameters optimized by the instantiater.
 */

#ifndef QUEST_SYNTH_ANSATZ_HH
#define QUEST_SYNTH_ANSATZ_HH

#include <vector>

#include "ir/circuit.hh"
#include "linalg/matrix.hh"

namespace quest {

/**
 * Partial derivative of the U3 matrix with respect to parameter
 * @p which (0 theta, 1 phi, 2 lambda).
 */
Matrix u3Derivative(double theta, double phi, double lambda, int which);

/**
 * The 2x2 U3 entries written row-major into @p g — the
 * allocation-free counterpart of makeU3 used by the instantiation
 * hot path.
 */
void makeU3Entries(double theta, double phi, double lambda, Complex g[4]);

/**
 * The U3 entries together with all three parameter derivatives
 * (row-major 2x2 each), sharing a single cos/sin/polar evaluation.
 * The cost function's backward pass calls this once per op instead
 * of one makeU3 plus three u3Derivative, each redoing the trig.
 */
void u3WithDerivatives(double theta, double phi, double lambda,
                       Complex g[4], Complex dg[3][4]);

/** One ansatz operation: a parameterized U3 or a fixed CX. */
struct AnsatzOp
{
    bool isCx;
    int a;  //!< U3 wire, or CX control
    int b;  //!< CX target (unused for U3)
};

/**
 * A fixed structure of CX gates and parameterized U3 gates over a
 * small number of qubits. Provides the unitary and its analytic
 * parameter gradient for the optimizer.
 */
class Ansatz
{
  public:
    /** An empty ansatz over @p n_qubits wires (at most 6). */
    explicit Ansatz(int n_qubits);

    /** The initial structure: one U3 on every wire. */
    static Ansatz initialLayer(int n_qubits);

    int numQubits() const { return nQubits; }

    /** Free parameter count (three per U3). */
    int paramCount() const { return 3 * u3Count; }

    /** Number of CX gates in the structure. */
    int cnotCount() const { return cxCount; }

    /** Append a parameterized U3 on wire q. */
    void addU3(int q);

    /** Append a fixed CX. */
    void addCx(int control, int target);

    /**
     * Append a synthesis layer: CX(a, b) followed by U3 on a and on
     * b (the Leap compiler's expansion step).
     */
    void addLayer(int a, int b);

    /** Materialize a concrete circuit from parameter values. */
    Circuit instantiate(const std::vector<double> &params) const;

    /** The ansatz unitary at the given parameters. */
    Matrix unitary(const std::vector<double> &params) const;

    /**
     * The unitary together with the partial derivative with respect
     * to every parameter (analytic; used by the HS cost gradient).
     */
    void unitaryAndGradient(const std::vector<double> &params, Matrix &u,
                            std::vector<Matrix> &grads) const;

    /** The op sequence (for the fast cost-function path). */
    const std::vector<AnsatzOp> &operations() const { return ops; }

    /** Basis-index bit of wire q (qubit 0 is the most significant). */
    size_t
    wireBit(int q) const
    {
        return size_t{1} << (nQubits - 1 - q);
    }

  private:
    using Op = AnsatzOp;

    int nQubits;
    int u3Count = 0;
    int cxCount = 0;
    std::vector<Op> ops;
};

} // namespace quest

#endif // QUEST_SYNTH_ANSATZ_HH
