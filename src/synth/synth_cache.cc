#include "synth/synth_cache.hh"

#include "util/serialize.hh"
#include "util/sha256.hh"

namespace quest {

std::string
synthesisCacheKey(const Matrix &target, int max_cnots,
                  const std::vector<std::pair<int, int>> *skeleton,
                  const SynthConfig &cfg)
{
    ByteWriter key;

    // Bump this tag whenever a synthesis change makes previously
    // cached outputs semantically stale (new lineages, a different
    // candidate-recording rule, ...). It invalidates every existing
    // entry at once without touching the on-disk container format.
    key.str("quest-synth-key-v1");

    key.u64(target.rows());
    key.u64(target.cols());
    key.bytes(target.data().data(),
              target.data().size() * sizeof(Complex));

    key.i32(max_cnots);
    const size_t skeleton_len = skeleton ? skeleton->size() : 0;
    key.u32(static_cast<uint32_t>(skeleton_len));
    if (skeleton) {
        for (auto [a, b] : *skeleton) {
            key.i32(a);
            key.i32(b);
        }
    }

    key.f64(cfg.exactEpsilon);
    key.i32(cfg.beamWidth);
    key.i32(cfg.reseedInterval);
    key.i32(cfg.candidatesPerLevel);
    key.i32(cfg.extraLevels);
    key.i32(cfg.maxLayers);
    key.i32(cfg.stallLevels);
    key.i32(cfg.inst.multistarts);
    key.f64(cfg.inst.goal);
    key.i32(cfg.inst.lbfgs.maxIterations);
    key.i32(cfg.inst.lbfgs.historySize);
    key.f64(cfg.inst.lbfgs.gradTolerance);
    key.f64(cfg.inst.lbfgs.valueTolerance);
    key.u32(static_cast<uint32_t>(cfg.couplings.size()));
    for (auto [a, b] : cfg.couplings) {
        key.i32(a);
        key.i32(b);
    }
    key.u64(cfg.seed);

    return Sha256::hexDigest(key.buffer().data(), key.size());
}

} // namespace quest
