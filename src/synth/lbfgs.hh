/**
 * @file
 * Limited-memory BFGS minimizer with backtracking line search: the
 * numerical-optimization engine behind circuit instantiation.
 */

#ifndef QUEST_SYNTH_LBFGS_HH
#define QUEST_SYNTH_LBFGS_HH

#include <functional>
#include <vector>

#include "resilience/budget.hh"

namespace quest {

/**
 * Objective callback: returns f(x); writes the gradient into @p grad
 * when it is non-null.
 */
using GradObjective =
    std::function<double(const std::vector<double> &x,
                         std::vector<double> *grad)>;

/** L-BFGS options. */
struct LbfgsOptions
{
    int maxIterations = 400;
    int historySize = 8;
    double gradTolerance = 1e-10;   //!< stop when ||g||_inf below this
    double valueTolerance = 1e-14;  //!< stop on relative f stagnation

    /**
     * Deadline/cancellation, polled once per iteration (an unbounded
     * budget costs two branches and no clock read). On exhaustion the
     * best point so far is returned with `stopped` set.
     */
    resilience::Budget budget;
};

/** Minimization outcome. */
struct LbfgsResult
{
    std::vector<double> x;
    double value = 0.0;
    int iterations = 0;
    bool converged = false;

    /** Why the loop quit early, if the budget fired. */
    resilience::StopReason stopped = resilience::StopReason::None;
};

/** Minimize an unconstrained smooth objective from @p x0. */
LbfgsResult lbfgsMinimize(const GradObjective &objective,
                          std::vector<double> x0,
                          const LbfgsOptions &options = {});

} // namespace quest

#endif // QUEST_SYNTH_LBFGS_HH
