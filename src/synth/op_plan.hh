/**
 * @file
 * Precompiled ansatz execution plan shared by the scalar and batched
 * HS cost functions.
 *
 * Wire bits and parameter bases are structural — they depend only on
 * the ansatz, never on the parameter values — so both engines resolve
 * them once at cost-object construction. Keeping the compilation in
 * one place guarantees the two engines walk exactly the same op
 * sequence, which the batched engine's bit-for-bit parity with the
 * scalar reference relies on.
 */

#ifndef QUEST_SYNTH_OP_PLAN_HH
#define QUEST_SYNTH_OP_PLAN_HH

#include <cstddef>
#include <vector>

#include "synth/ansatz.hh"

namespace quest::synth {

/** One op of the precompiled execution plan: wire bits and the
 *  parameter base resolved once at construction. */
struct OpPlan
{
    bool isCx;
    size_t bit;   //!< U3 wire bit, or CX control bit
    size_t bit2;  //!< CX target bit (unused for U3)
    int base;     //!< first parameter index (-1 for CX)
};

/** The full plan for an ansatz, plus the derived counts. */
struct CompiledPlan
{
    std::vector<OpPlan> ops;
    size_t u3Count = 0;
    int nParams = 0;
};

/** Compile the ansatz op sequence into wire bits and parameter
 *  bases. */
inline CompiledPlan
compilePlan(const Ansatz &ansatz)
{
    CompiledPlan plan;
    const auto &ops = ansatz.operations();
    plan.ops.reserve(ops.size());
    int p = 0;
    for (const AnsatzOp &op : ops) {
        OpPlan e;
        e.isCx = op.isCx;
        e.bit = ansatz.wireBit(op.a);
        e.bit2 = op.isCx ? ansatz.wireBit(op.b) : 0;
        e.base = op.isCx ? -1 : p;
        if (!op.isCx) {
            p += 3;
            ++plan.u3Count;
        }
        plan.ops.push_back(e);
    }
    plan.nParams = p;
    return plan;
}

} // namespace quest::synth

#endif // QUEST_SYNTH_OP_PLAN_HH
