#include "synth/hs_cost.hh"

#include <cmath>

#include "linalg/decompose.hh"
#include "linalg/distance.hh"
#include "util/logging.hh"

namespace quest {

namespace {

/** In-place left multiplication by a 2x2 gate on wire q: row mixing. */
void
leftApplyU3(Matrix &m, const Matrix &g, int q, int n)
{
    const size_t dim = m.rows();
    const size_t bit = size_t{1} << (n - 1 - q);
    const Complex g00 = g(0, 0), g01 = g(0, 1);
    const Complex g10 = g(1, 0), g11 = g(1, 1);
    for (size_t r = 0; r < dim; ++r) {
        if (r & bit)
            continue;
        Complex *row0 = &m.data()[r * dim];
        Complex *row1 = &m.data()[(r | bit) * dim];
        for (size_t c = 0; c < dim; ++c) {
            Complex a = row0[c], b = row1[c];
            row0[c] = g00 * a + g01 * b;
            row1[c] = g10 * a + g11 * b;
        }
    }
}

/** In-place left multiplication by CX(control, target): row swaps. */
void
leftApplyCx(Matrix &m, int control, int target, int n)
{
    const size_t dim = m.rows();
    const size_t bc = size_t{1} << (n - 1 - control);
    const size_t bt = size_t{1} << (n - 1 - target);
    for (size_t r = 0; r < dim; ++r) {
        if ((r & bc) && !(r & bt)) {
            Complex *row0 = &m.data()[r * dim];
            Complex *row1 = &m.data()[(r | bt) * dim];
            for (size_t c = 0; c < dim; ++c)
                std::swap(row0[c], row1[c]);
        }
    }
}

/** In-place right multiplication by a 2x2 gate: column mixing. */
void
rightApplyU3(Matrix &m, const Matrix &g, int q, int n)
{
    const size_t dim = m.rows();
    const size_t bit = size_t{1} << (n - 1 - q);
    const Complex g00 = g(0, 0), g01 = g(0, 1);
    const Complex g10 = g(1, 0), g11 = g(1, 1);
    for (size_t r = 0; r < dim; ++r) {
        Complex *row = &m.data()[r * dim];
        for (size_t c = 0; c < dim; ++c) {
            if (c & bit)
                continue;
            Complex a = row[c], b = row[c | bit];
            row[c] = a * g00 + b * g10;
            row[c | bit] = a * g01 + b * g11;
        }
    }
}

/** In-place right multiplication by CX: column swaps. */
void
rightApplyCx(Matrix &m, int control, int target, int n)
{
    const size_t dim = m.rows();
    const size_t bc = size_t{1} << (n - 1 - control);
    const size_t bt = size_t{1} << (n - 1 - target);
    for (size_t r = 0; r < dim; ++r) {
        Complex *row = &m.data()[r * dim];
        for (size_t c = 0; c < dim; ++c) {
            if ((c & bc) && !(c & bt))
                std::swap(row[c], row[c | bt]);
        }
    }
}

/**
 * Reduce W = P * B to the 2x2 contraction on wire q:
 * w2(a, b) = sum_rest W(idx(rest, a), idx(rest, b)), so that
 * Tr(W * embed(d)) = sum_ab w2(a, b) d(b, a).
 */
void
reduceTrace(const Matrix &p, const Matrix &b, int q, int n,
            Complex w2[2][2])
{
    const size_t dim = p.rows();
    const size_t bit = size_t{1} << (n - 1 - q);
    for (int a = 0; a < 2; ++a)
        for (int c = 0; c < 2; ++c)
            w2[a][c] = Complex(0.0, 0.0);
    for (size_t rest = 0; rest < dim; ++rest) {
        if (rest & bit)
            continue;
        for (int a = 0; a < 2; ++a) {
            const size_t r = a ? (rest | bit) : rest;
            const Complex *prow = &p.data()[r * dim];
            for (int c = 0; c < 2; ++c) {
                const size_t col = c ? (rest | bit) : rest;
                Complex sum(0.0, 0.0);
                for (size_t m = 0; m < dim; ++m)
                    sum += prow[m] * b(m, col);
                w2[a][c] += sum;
            }
        }
    }
}

} // namespace

HsCost::HsCost(const Matrix &target, const Ansatz &ansatz)
    : target(target), ansatz(ansatz)
{
    QUEST_ASSERT(target.isSquare(), "target must be square");
    QUEST_ASSERT(target.rows() == (size_t{1} << ansatz.numQubits()),
                 "target dimension does not match ansatz width");
    const double n = static_cast<double>(target.rows());
    dimSquared = n * n;
}

double
HsCost::evaluate(const std::vector<double> &params,
                 std::vector<double> *grad) const
{
    const auto &ops = ansatz.operations();
    const int n = ansatz.numQubits();
    const size_t dim = size_t{1} << n;
    const size_t count = ops.size();

    if (!grad) {
        Matrix u = Matrix::identity(dim);
        size_t p = 0;
        for (const AnsatzOp &op : ops) {
            if (op.isCx) {
                leftApplyCx(u, op.a, op.b, n);
            } else {
                leftApplyU3(u, makeU3(params[p], params[p + 1],
                                      params[p + 2]),
                            op.a, n);
                p += 3;
            }
        }
        Complex tr = hsInnerProduct(target, u);
        return 1.0 - std::norm(tr) / dimSquared;
    }

    // Forward pass: prefix[j] = op_{j-1} ... op_0 (prefix[0] = I).
    std::vector<Matrix> prefix(count + 1);
    std::vector<int> param_base(count, -1);
    prefix[0] = Matrix::identity(dim);
    {
        size_t p = 0;
        for (size_t j = 0; j < count; ++j) {
            param_base[j] = static_cast<int>(p);
            prefix[j + 1] = prefix[j];
            if (ops[j].isCx) {
                leftApplyCx(prefix[j + 1], ops[j].a, ops[j].b, n);
            } else {
                leftApplyU3(prefix[j + 1],
                            makeU3(params[p], params[p + 1],
                                   params[p + 2]),
                            ops[j].a, n);
                p += 3;
            }
        }
    }
    Complex tr = hsInnerProduct(target, prefix[count]);

    // Backward pass: b = target^dagger * op_{L-1} ... op_{j+1}. At a
    // parameterized op, contract prefix[j] * b down to a 2x2 and dot
    // it with the three analytic U3 derivatives.
    grad->assign(params.size(), 0.0);
    Matrix b = target.adjoint();
    Complex w2[2][2];
    for (size_t j = count; j-- > 0;) {
        if (!ops[j].isCx) {
            const int base = param_base[j];
            reduceTrace(prefix[j], b, ops[j].a, n, w2);
            for (int which = 0; which < 3; ++which) {
                Matrix d = u3Derivative(params[base], params[base + 1],
                                        params[base + 2], which);
                Complex dtr = w2[0][0] * d(0, 0) + w2[0][1] * d(1, 0) +
                              w2[1][0] * d(0, 1) + w2[1][1] * d(1, 1);
                (*grad)[base + which] =
                    -2.0 * (std::conj(tr) * dtr).real() / dimSquared;
            }
            rightApplyU3(b, makeU3(params[base], params[base + 1],
                                   params[base + 2]),
                         ops[j].a, n);
        } else {
            rightApplyCx(b, ops[j].a, ops[j].b, n);
        }
    }

    return 1.0 - std::norm(tr) / dimSquared;
}

double
HsCost::distance(const std::vector<double> &params) const
{
    return std::sqrt(std::max(0.0, evaluate(params, nullptr)));
}

} // namespace quest
