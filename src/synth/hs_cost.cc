#include "synth/hs_cost.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest {

namespace {

using kern::cmul;

void
setIdentity(Complex *QUEST_RESTRICT m, size_t dim)
{
    std::fill(m, m + dim * dim, Complex(0.0, 0.0));
    for (size_t i = 0; i < dim; ++i)
        m[i * dim + i] = Complex(1.0, 0.0);
}

/** Evaluate calls that reused the workspace without allocating. */
obs::Counter &
workspaceReuseCounter()
{
    static auto &c = obs::MetricsRegistry::global().counter(
        names::kMetricSynthWorkspaceReuses);
    return c;
}

} // namespace

bool
HsWorkspace::ensure(size_t dim, size_t opCount, size_t u3Count)
{
    const size_t dd = dim * dim;
    bool grew = false;
    auto fit = [&grew](std::vector<Complex> &v, size_t n) {
        if (v.size() < n) {
            v.resize(n);
            grew = true;
        }
    };
    fit(prefix, (opCount + 1) * dd);
    fit(backward, dd);
    fit(scratch, dd);
    fit(u3Terms, u3Count * 16);
    if (grew)
        ++allocations;
    else
        ++reuses;
    return grew;
}

HsCost::HsCost(const Matrix &target, const Ansatz &ansatz)
    : target(target), ansatz(ansatz)
{
    QUEST_ASSERT(target.isSquare(), "target must be square");
    QUEST_ASSERT(target.rows() == (size_t{1} << ansatz.numQubits()),
                 "target dimension does not match ansatz width");
    dim = target.rows();
    const double n = static_cast<double>(dim);
    dimSquared = n * n;
    kernels = &kern::kernelsForDim(dim);

    // Precompile the op sequence: wire bits and parameter bases are
    // structural, so resolve them once instead of per evaluation. The
    // plan compiler is shared with the batched engine (op_plan.hh) so
    // both walk the same sequence.
    synth::CompiledPlan compiled = synth::compilePlan(ansatz);
    plan = std::move(compiled.ops);
    u3Count = compiled.u3Count;
    nParams = compiled.nParams;

    targetConj.resize(dim * dim);
    const Complex *t = target.data().data();
    for (size_t i = 0; i < dim * dim; ++i)
        targetConj[i] = std::conj(t[i]);

    // Warm the arena now so every evaluate() is allocation-free.
    ws.ensure(dim, plan.size(), u3Count);
}

Complex
HsCost::traceAgainstTarget(const Complex *QUEST_RESTRICT u) const
{
    // Tr(target^dagger U) = sum_i conj(target_i) * u_i elementwise.
    const Complex *QUEST_RESTRICT tc = targetConj.data();
    Complex tr(0.0, 0.0);
    const size_t dd = dim * dim;
    for (size_t i = 0; i < dd; ++i)
        tr += cmul(tc[i], u[i]);
    return tr;
}

double
HsCost::evaluate(const std::vector<double> &params,
                 std::vector<double> *grad) const
{
    QUEST_ASSERT(static_cast<int>(params.size()) == nParams,
                 "parameter count mismatch");
    const size_t count = plan.size();
    const size_t dd = dim * dim;
    const kern::KernelSet &k = *kernels;

    if (!ws.ensure(dim, count, u3Count))
        workspaceReuseCounter().increment();

    if (!grad) {
        Complex *QUEST_RESTRICT u = ws.scratch.data();
        setIdentity(u, dim);
        Complex g[4];
        for (const synth::OpPlan &op : plan) {
            if (op.isCx) {
                k.leftCx(dim, u, op.bit, op.bit2);
            } else {
                makeU3Entries(params[op.base], params[op.base + 1],
                              params[op.base + 2], g);
                k.leftU3(dim, u, g, op.bit);
            }
        }
        return 1.0 - std::norm(traceAgainstTarget(u)) / dimSquared;
    }

    // Forward pass: prefix slice j holds op_{j-1} ... op_0 (slice 0 is
    // the identity). Each U3's entries and all three derivatives are
    // cached from one shared trig evaluation for the backward pass.
    Complex *QUEST_RESTRICT pre = ws.prefix.data();
    Complex *QUEST_RESTRICT terms = ws.u3Terms.data();
    setIdentity(pre, dim);
    {
        size_t ui = 0;
        for (size_t j = 0; j < count; ++j) {
            const synth::OpPlan &op = plan[j];
            Complex *cur = pre + j * dd;
            Complex *nxt = cur + dd;
            std::copy(cur, cur + dd, nxt);
            if (op.isCx) {
                k.leftCx(dim, nxt, op.bit, op.bit2);
            } else {
                Complex *slot = terms + ui * 16;
                u3WithDerivatives(params[op.base], params[op.base + 1],
                                  params[op.base + 2], slot,
                                  reinterpret_cast<Complex(*)[4]>(slot + 4));
                k.leftU3(dim, nxt, slot, op.bit);
                ++ui;
            }
        }
    }
    const Complex tr = traceAgainstTarget(pre + count * dd);

    // Backward pass, transposed: bt = B^T with
    // B = target^dagger * op_{L-1} ... op_{j+1}, so B's strided
    // columns become bt's contiguous rows and every update is a
    // row-mixing kernel. Initially bt = (target^dagger)^T =
    // conj(target); appending op j on B's right (B <- B * embed(g))
    // is bt <- embed(g)^T * bt, i.e. leftU3 with the transposed gate.
    grad->resize(static_cast<size_t>(nParams));
    Complex *QUEST_RESTRICT bt = ws.backward.data();
    std::copy(targetConj.begin(), targetConj.end(), bt);
    const Complex trc = std::conj(tr);
    Complex w2[4];
    size_t ui = u3Count;
    for (size_t j = count; j-- > 0;) {
        const synth::OpPlan &op = plan[j];
        if (op.isCx) {
            // embed(CX)^T = embed(CX): the same row-swap kernel.
            k.leftCx(dim, bt, op.bit, op.bit2);
            continue;
        }
        const Complex *slot = terms + --ui * 16;
        k.reduceTraceT(dim, pre + j * dd, bt, op.bit, w2);
        for (int which = 0; which < 3; ++which) {
            const Complex *d = slot + 4 + which * 4;
            // Tr(W * embed(d)) = sum_ac w2[a][c] d(c, a).
            const Complex dtr = cmul(w2[0], d[0]) + cmul(w2[1], d[2]) +
                                cmul(w2[2], d[1]) + cmul(w2[3], d[3]);
            (*grad)[op.base + which] =
                -2.0 * cmul(trc, dtr).real() / dimSquared;
        }
        const Complex gT[4] = {slot[0], slot[2], slot[1], slot[3]};
        k.leftU3(dim, bt, gT, op.bit);
    }

    return 1.0 - std::norm(tr) / dimSquared;
}

double
HsCost::distance(const std::vector<double> &params) const
{
    return std::sqrt(std::max(0.0, evaluate(params, nullptr)));
}

} // namespace quest
