#include "synth/leap_synthesizer.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "linalg/decompose.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "resilience/error.hh"
#include "resilience/fault.hh"
#include "resilience/thread_pool.hh"
#include "synth/synth_cache.hh"
#include "util/logging.hh"
#include "verify/verifier.hh"
#include "util/names.hh"
#include "util/annotations.hh"

namespace quest {

namespace {

/**
 * Structural lint over every recorded candidate: native gate set on
 * the right wire count, and a CNOT count that matches the circuit.
 * Any failure is a synthesizer bug.
 */
void
verifyCandidates(const SynthOutput &out, int n)
{
    CircuitVerifier verifier({.requireNative = true,
                              .allowPseudoOps = false,
                              .maxIssues = 16});
    for (size_t i = 0; i < out.candidates.size(); ++i) {
        const SynthCandidate &c = out.candidates[i];
        QUEST_ASSERT(c.circuit.numQubits() == n,
                     "candidate ", i, " spans ",
                     c.circuit.numQubits(), " wires; target has ", n);
        QUEST_ASSERT(static_cast<size_t>(c.cnotCount) ==
                     c.circuit.cnotCount(),
                     "candidate ", i, " reports ", c.cnotCount,
                     " CNOTs but contains ", c.circuit.cnotCount());
        VerifyReport report = verifier.verify(c.circuit);
        if (!report.ok()) {
            QUEST_PANIC("synthesis candidate ", i,
                        " failed verification:\n", report.toString());
        }
    }
}

/**
 * Deep validation of a cache-loaded output. Disk bytes are untrusted
 * even after checksums: a stale or foreign entry must never reach the
 * pipeline, so every candidate is re-linted (native gate set, wires,
 * finite angles) and the summary fields are cross-checked. A failure
 * here is a reason to invalidate and re-synthesize, never to crash.
 */
bool
loadedOutputUsable(const SynthOutput &out, int n)
{
    if (out.candidates.empty() ||
        out.bestIndex >= out.candidates.size()) {
        return false;
    }
    const CircuitVerifier verifier({.requireNative = true,
                                    .allowPseudoOps = false,
                                    .maxIssues = 1});
    for (const SynthCandidate &c : out.candidates) {
        if (c.circuit.numQubits() != n)
            return false;
        if (c.cnotCount < 0 ||
            static_cast<size_t>(c.cnotCount) != c.circuit.cnotCount()) {
            return false;
        }
        if (!std::isfinite(c.distance) || c.distance < 0.0)
            return false;
        if (!verifier.verify(c.circuit).ok())
            return false;
    }
    return true;
}

/** Searches actually performed (not served by any cache layer). */
obs::Counter &
searchCounter()
{
    static auto &c = obs::MetricsRegistry::global().counter(
        names::kMetricSynthCacheMisses);
    return c;
}

/** Searches avoided via the persistent store (the pipeline's
 *  in-memory dedup adds to the same counter). */
obs::Counter &
diskHitCounter()
{
    static auto &c = obs::MetricsRegistry::global().counter(
        names::kMetricSynthCacheHits);
    return c;
}

int
log2Dim(size_t dim)
{
    int n = 0;
    while ((size_t{1} << n) < dim)
        ++n;
    QUEST_ASSERT((size_t{1} << n) == dim, "dimension not a power of two");
    return n;
}

/** A live tree node: structure plus its best instantiation. */
struct Node
{
    Ansatz ansatz;
    std::vector<double> params;
    double distance;
};

/**
 * Fixed pair schedules for the auxiliary lineages. Greedy tree search
 * over a distance heuristic dead-ends when the landscape is
 * non-monotonic in depth (adding a layer can make the best achievable
 * distance temporarily worse before it collapses), so the compiler
 * also grows fixed-structure lineages that are known to converge:
 * a nearest-neighbor brickwork ladder (even bonds then odd bonds) and
 * an all-pairs round-robin ladder.
 */
std::vector<std::pair<int, int>>
brickworkSchedule(int n)
{
    std::vector<std::pair<int, int>> schedule;
    for (int i = 0; i + 1 < n; i += 2)
        schedule.emplace_back(i, i + 1);
    for (int i = 1; i + 1 < n; i += 2)
        schedule.emplace_back(i, i + 1);
    return schedule;
}

std::vector<std::pair<int, int>>
allPairsSchedule(int n)
{
    // Ordered by wire distance so the cycle starts like brickwork
    // but also reaches the long-range pairs.
    std::vector<std::pair<int, int>> schedule;
    for (int d = 1; d < n; ++d)
        for (int a = 0; a + d < n; ++a)
            schedule.emplace_back(a, a + d);
    return schedule;
}

/** Translate a fired budget into the structured error the pipeline's
 *  per-block handler maps to a timeout/cancelled BlockOutcome. */
[[noreturn]] void
throwBudgetExhausted(resilience::StopReason reason, int level)
{
    using resilience::ErrorCategory;
    const auto category = reason == resilience::StopReason::Cancelled
                              ? ErrorCategory::Cancelled
                              : ErrorCategory::Timeout;
    throw resilience::QuestError(
        category, std::string("synthesis budget exhausted (") +
                      resilience::stopReasonName(reason) + ")")
        .withContext("at synthesis level " + std::to_string(level));
}

} // namespace

LeapSynthesizer::LeapSynthesizer(SynthConfig config)
    : cfg(std::move(config))
{
    QUEST_ASSERT(cfg.beamWidth >= 1, "beam width must be positive");
    QUEST_ASSERT(cfg.reseedInterval >= 1, "reseed interval must be >= 1");
}

SynthOutput
LeapSynthesizer::synthesize(const Matrix &target, int max_cnots,
                            const std::vector<std::pair<int, int>>
                                *skeleton) const
{
    QUEST_TRACE_SCOPE("synth.synthesize");
    static auto &synth_calls =
        obs::MetricsRegistry::global().counter(names::kMetricSynthCalls);
    synth_calls.increment();

    const int n = log2Dim(target.rows());
    QUEST_ASSERT(target.isUnitary(1e-8), "synthesis target not unitary");

    std::string cache_key;
    if (cfg.cache) {
        cache_key = synthesisCacheKey(target, max_cnots, skeleton, cfg);
        if (auto loaded = cfg.cache->load(cache_key)) {
            if (loadedOutputUsable(*loaded, n)) {
                diskHitCounter().increment();
                return *std::move(loaded);
            }
            // The store's own integrity checks passed but the content
            // is not a valid output for this target: drop the entry
            // and synthesize fresh.
            obs::MetricsRegistry::global()
                .counter(names::kMetricCacheCorrupt)
                .increment();
            warn("synthesis cache: entry ", cache_key,
                 " failed deep validation; re-synthesizing");
            cfg.cache->invalidate(cache_key);
        }
    }
    searchCounter().increment();

    // Deterministic chaos hooks: force this block's synthesis to fail
    // the way a diverging or runaway search would, after the cache
    // consult (a cached block never re-fails) and before any work.
    if (QUEST_FAULT_POINT(names::kFaultSynthBlockDiverge)) {
        throw resilience::QuestError(resilience::ErrorCategory::Diverged,
                                     "injected synthesis divergence");
    }
    if (QUEST_FAULT_POINT(names::kFaultSynthBlockTimeout)) {
        throw resilience::QuestError(resilience::ErrorCategory::Timeout,
                                     "injected synthesis timeout");
    }

    SynthOutput out;

    if (n == 1) {
        // One-qubit targets decompose analytically.
        ZyzAngles a = zyzDecompose(target);
        Circuit c(1);
        c.append(Gate::u3(0, a.theta, a.phi, a.lambda));
        out.candidates.push_back({std::move(c), 0.0, 0});
        out.bestIndex = 0;
        if (cfg.verifyCandidates)
            verifyCandidates(out, n);
        if (cfg.cache)
            cfg.cache->store(cache_key, out);
        return out;
    }

    Rng rng(cfg.seed);

    // Worker threads for the per-level instantiations: a shared pool
    // when the caller provides one (cooperative parallelFor, so this
    // is safe even from inside the caller's own parallelFor), else a
    // private pool of cfg.threads - 1 workers — the calling thread
    // participates, so cfg.threads is the total busy-thread count.
    // The same pool is handed down to instantiate() so multistarts
    // parallelize too; nested parallelFor on a cooperative pool keeps
    // the thread budget intact.
    ThreadPool *pool = cfg.pool;
    std::optional<ThreadPool> local_pool;
    if (!pool && cfg.threads > 1) {
        local_pool.emplace(cfg.threads - 1);
        pool = &*local_pool;
    }

    InstantiaterOptions inst = cfg.inst;
    inst.goal = cfg.exactEpsilon * cfg.exactEpsilon;
    inst.pool = pool;
    inst.budget = inst.budget.withDeadline(cfg.budget.deadline);
    if (!inst.budget.cancel)
        inst.budget.cancel = cfg.budget.cancel;

    // The brickwork lineage is one task out of ~pairs-per-level, so
    // giving it a stronger optimization budget is cheap and makes the
    // guaranteed-convergence path actually converge.
    InstantiaterOptions brick_inst = inst;
    brick_inst.multistarts = 2 * inst.multistarts;
    brick_inst.lbfgs.maxIterations = 2 * inst.lbfgs.maxIterations;

    // Level 0: U3 on every wire.
    std::vector<Node> frontier;
    {
        Ansatz a = Ansatz::initialLayer(n);
        InstantiationResult r = instantiate(target, a, rng, inst);
        out.candidates.push_back(
            {a.instantiate(r.params), r.distance, 0});
        frontier.push_back({std::move(a), std::move(r.params),
                            r.distance});
    }

    // Allowed CNOT placements: all unordered wire pairs, or the
    // configured coupling graph (the CX direction is absorbed by the
    // surrounding U3s either way).
    std::vector<std::pair<int, int>> pairs;
    if (cfg.couplings.empty()) {
        for (int a = 0; a < n; ++a)
            for (int b = a + 1; b < n; ++b)
                pairs.emplace_back(a, b);
    } else {
        for (auto [a, b] : cfg.couplings) {
            QUEST_ASSERT(a >= 0 && a < n && b >= 0 && b < n && a != b,
                         "bad coupling (", a, ",", b, ")");
            pairs.emplace_back(std::min(a, b), std::max(a, b));
        }
        std::sort(pairs.begin(), pairs.end());
        pairs.erase(std::unique(pairs.begin(), pairs.end()),
                    pairs.end());
    }

    // The dedicated fixed-schedule lineages grow one layer per level.
    struct Lineage
    {
        Node node;
        std::vector<std::pair<int, int>> schedule;
    };
    std::vector<Lineage> lineages;
    if (cfg.couplings.empty()) {
        lineages.push_back({frontier.front(), brickworkSchedule(n)});
        if (n > 2) {
            auto all = allPairsSchedule(n);
            if (all != lineages.front().schedule)
                lineages.push_back({frontier.front(), std::move(all)});
        }
    } else {
        // Topology-restricted: cycle the coupling edges round-robin.
        lineages.push_back({frontier.front(), pairs});
    }
    if (skeleton && !skeleton->empty()) {
        // Following the original circuit's own CX ordering keeps the
        // exact solution (and its shorter prefixes) in the tree.
        std::vector<std::pair<int, int>> sched = *skeleton;
        bool duplicate = false;
        for (const Lineage &l : lineages)
            duplicate |= l.schedule == sched;
        if (!duplicate)
            lineages.push_back({frontier.front(), std::move(sched)});
    }

    const int budget = std::min(max_cnots, cfg.maxLayers);
    double best_overall = frontier.front().distance;
    int levels_past_exact = 0;
    int stall = 0;

    static auto &levels_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSynthLevels);
    static auto &tasks_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSynthTasks);

    for (int level = 1; level <= budget; ++level) {
        QUEST_TRACE_SCOPE("synth.level");
        if (const auto stop = cfg.budget.stop();
            stop != resilience::StopReason::None) {
            throwBudgetExhausted(stop, level);
        }
        levels_counter.increment();
        // Build the level's task list: every (frontier node, pair)
        // expansion plus the brickwork lineage.
        struct Task
        {
            Ansatz ansatz;
            const std::vector<double> *warm;
            Rng rng;
            bool isBrick;
        };
        std::vector<Task> tasks;
        for (const Node &parent : frontier) {
            for (auto [a, b] : pairs) {
                Ansatz child = parent.ansatz;
                child.addLayer(a, b);
                tasks.push_back({std::move(child), &parent.params,
                                 rng.split(), false});
            }
        }
        for (Lineage &lineage : lineages) {
            auto [a, b] = lineage.schedule[static_cast<size_t>(level - 1) %
                                           lineage.schedule.size()];
            lineage.node.ansatz.addLayer(a, b);
            tasks.push_back({lineage.node.ansatz, &lineage.node.params,
                             rng.split(), true});
        }

        tasks_counter.add(tasks.size());
        std::vector<Node> children(tasks.size(),
                                   Node{Ansatz(n), {}, 1.0});
        auto run_task = [&](size_t i) {
            Task &t = tasks[i];
            std::optional<std::vector<double>> warm;
            if (t.warm)
                warm = *t.warm;
            InstantiationResult r =
                instantiate(target, t.ansatz, t.rng,
                            t.isBrick ? brick_inst : inst, warm);
            children[i] = {std::move(t.ansatz), std::move(r.params),
                           r.distance};
        };
        if (pool) {
            pool->parallelFor(tasks.size(), run_task, cfg.budget.cancel);
        } else {
            for (size_t i = 0; i < tasks.size(); ++i) {
                if (cfg.budget.exhausted())
                    break;
                run_task(i);
            }
        }
        // A fired budget can leave unclaimed tasks untouched
        // (default-constructed children with no circuit behind them);
        // bail out before any of those could be recorded.
        if (const auto stop = cfg.budget.stop();
            stop != resilience::StopReason::None) {
            throwBudgetExhausted(stop, level);
        }
        for (size_t l = 0; l < lineages.size(); ++l)
            lineages[l].node =
                children[children.size() - lineages.size() + l];

        std::sort(children.begin(), children.end(),
                  [](const Node &x, const Node &y) {
                      return x.distance < y.distance;
                  });

        // Record the best candidates at this CNOT level.
        const int keep = std::min<int>(cfg.candidatesPerLevel,
                                       static_cast<int>(children.size()));
        for (int i = 0; i < keep; ++i) {
            QUEST_BOUNDED_LOOP("keep <= candidatesPerLevel, a small "
                               "config constant; instantiate() here "
                               "is a cheap parameter bind");
            // Diverged instantiations carry an infinite distance (and
            // sort last); recording them would produce an output that
            // can never pass the cache's deep validation.
            if (!std::isfinite(children[i].distance))
                break;
            out.candidates.push_back(
                {children[i].ansatz.instantiate(children[i].params),
                 children[i].distance, level});
        }

        // New frontier: beam, with LEAP prefix reseeding collapsing
        // to the single best node every reseedInterval levels.
        int width = (level % cfg.reseedInterval == 0)
                        ? 1
                        : cfg.beamWidth;
        width = std::min<int>(width, static_cast<int>(children.size()));
        frontier.assign(std::make_move_iterator(children.begin()),
                        std::make_move_iterator(children.begin() + width));

        // Termination: exact solution reached (explore a few extra
        // levels so above-minimum CNOT counts are represented), or
        // the distance has stopped improving.
        if (frontier.front().distance < cfg.exactEpsilon) {
            if (++levels_past_exact > cfg.extraLevels)
                break;
            continue;
        }
        if (frontier.front().distance < best_overall * 0.99) {
            best_overall = frontier.front().distance;
            stall = 0;
        } else if (++stall >= std::max(cfg.stallLevels, 2 * (n - 1))) {
            break;
        }
    }

    std::stable_sort(out.candidates.begin(), out.candidates.end(),
                     [](const SynthCandidate &x, const SynthCandidate &y) {
                         if (x.cnotCount != y.cnotCount)
                             return x.cnotCount < y.cnotCount;
                         return x.distance < y.distance;
                     });
    // Preferred candidate: the first (shortest, candidates being
    // CNOT-sorted) one that counts as exact, matching the selection
    // synthesizeExact makes; with no exact candidate, fall back to
    // the global minimum distance.
    out.bestIndex = 0;
    size_t argmin = 0;
    bool have_exact = false;
    for (size_t i = 0; i < out.candidates.size(); ++i) {
        if (out.candidates[i].distance <
            out.candidates[argmin].distance) {
            argmin = i;
        }
        if (!have_exact &&
            out.candidates[i].distance < cfg.exactEpsilon) {
            have_exact = true;
            out.bestIndex = i;
        }
    }
    if (!have_exact)
        out.bestIndex = argmin;
    static auto &candidates_counter =
        obs::MetricsRegistry::global().counter(names::kMetricSynthCandidates);
    candidates_counter.add(out.candidates.size());

    // Cache-purity gate: the budget may have fired inside the final
    // level's instantiations without tripping a loop poll. Exhaustion
    // is monotone (a deadline stays expired, a token stays
    // cancelled), so "not exhausted here" proves the whole search ran
    // unbounded — only such complete, deterministic outputs may be
    // published to the cache or returned.
    if (const auto stop = cfg.budget.stop();
        stop != resilience::StopReason::None) {
        throwBudgetExhausted(stop, budget);
    }

    if (cfg.verifyCandidates)
        verifyCandidates(out, n);
    if (cfg.cache)
        cfg.cache->store(cache_key, out);
    return out;
}

SynthCandidate
LeapSynthesizer::synthesizeExact(const Matrix &target, double epsilon,
                                 int max_cnots) const
{
    SynthOutput out = synthesize(target, max_cnots);
    for (const SynthCandidate &c : out.candidates) {
        if (c.distance < epsilon)
            return c;  // candidates are sorted by CNOT count
    }
    return out.best();
}

} // namespace quest
