#include "partition/scan_partitioner.hh"

#include <algorithm>

#include "util/logging.hh"

namespace quest {

ScanPartitioner::ScanPartitioner(int max_block_size)
    : maxBlockSize(max_block_size)
{
    QUEST_ASSERT(max_block_size >= 2, "blocks need at least two qubits");
}

std::vector<Block>
ScanPartitioner::partition(const Circuit &circuit) const
{
    QUEST_ASSERT(!circuit.hasMeasurements(),
                 "partition a measurement-free circuit");
    const int n = circuit.numQubits();

    // Indices of gates not yet assigned to any block, in order.
    std::vector<size_t> remaining;
    remaining.reserve(circuit.size());
    for (size_t i = 0; i < circuit.size(); ++i) {
        if (circuit[i].type != GateType::Barrier)
            remaining.push_back(i);
    }

    std::vector<Block> blocks;
    std::vector<bool> blocked(n);
    std::vector<bool> in_set(n);

    while (!remaining.empty()) {
        std::fill(blocked.begin(), blocked.end(), false);
        std::fill(in_set.begin(), in_set.end(), false);

        std::vector<size_t> absorbed;
        std::vector<int> set_wires;

        auto add_wires = [&](const Gate &g) {
            for (int q : g.qubits) {
                if (!in_set[q]) {
                    in_set[q] = true;
                    set_wires.push_back(q);
                }
            }
        };

        // Seed the block with the first remaining gate.
        const Gate &seed = circuit[remaining.front()];
        QUEST_ASSERT(seed.arity() <= maxBlockSize,
                     "gate wider than the block limit");
        add_wires(seed);
        absorbed.push_back(remaining.front());

        for (size_t r = 1; r < remaining.size(); ++r) {
            const Gate &g = circuit[remaining[r]];

            bool hits_blocked = false;
            int new_wires = 0;
            for (int q : g.qubits) {
                hits_blocked |= blocked[q];
                new_wires += in_set[q] ? 0 : 1;
            }

            if (!hits_blocked &&
                static_cast<int>(set_wires.size()) + new_wires <=
                    maxBlockSize) {
                add_wires(g);
                absorbed.push_back(remaining[r]);
                continue;
            }

            // Defer the gate: everything on its wires now depends on
            // it, so those wires close for this block.
            bool all_closed = true;
            for (int q : g.qubits)
                blocked[q] = true;
            for (int q : set_wires)
                all_closed &= blocked[q];
            if (all_closed &&
                static_cast<int>(set_wires.size()) >= maxBlockSize) {
                break;
            }
        }

        // Materialize the block with sorted local wire order.
        std::vector<int> wires = set_wires;
        std::sort(wires.begin(), wires.end());
        std::vector<int> local(n, -1);
        for (size_t i = 0; i < wires.size(); ++i)
            local[wires[i]] = static_cast<int>(i);

        Block block{Circuit(static_cast<int>(wires.size())), wires};
        for (size_t idx : absorbed) {
            Gate g = circuit[idx];
            for (int &q : g.qubits)
                q = local[q];
            block.circuit.append(std::move(g));
        }
        blocks.push_back(std::move(block));

        // Drop absorbed gates from the remaining list.
        std::vector<size_t> next;
        next.reserve(remaining.size() - absorbed.size());
        size_t a = 0;
        for (size_t idx : remaining) {
            if (a < absorbed.size() && absorbed[a] == idx) {
                ++a;
            } else {
                next.push_back(idx);
            }
        }
        remaining = std::move(next);
    }

    return blocks;
}

Circuit
assembleBlocks(const std::vector<Block> &blocks, int n_qubits)
{
    Circuit result(n_qubits);
    for (const Block &block : blocks)
        result.appendCircuit(block.circuit, block.qubits);
    return result;
}

} // namespace quest
