/**
 * @file
 * Circuit partitioning into synthesizable blocks (STEP 1, Sec. 3.3).
 *
 * Re-implements the BQSKit scan partitioner the paper uses: a single
 * front-to-back scan that greedily grows blocks of at most
 * max_block_size qubits, deferring gates that depend on gates already
 * deferred. Reassembling the blocks in creation order reproduces the
 * original circuit exactly.
 */

#ifndef QUEST_PARTITION_SCAN_PARTITIONER_HH
#define QUEST_PARTITION_SCAN_PARTITIONER_HH

#include <vector>

#include "ir/circuit.hh"

namespace quest {

/**
 * One partition block: a subcircuit over local wires together with
 * the mapping back to circuit wires (local wire i is circuit wire
 * qubits[i]; qubits is sorted ascending).
 */
struct Block
{
    Circuit circuit;
    std::vector<int> qubits;

    /** Number of qubits the block spans. */
    int width() const { return static_cast<int>(qubits.size()); }
};

/** Greedy single-scan partitioner (paper Sec. 4.1). */
class ScanPartitioner
{
  public:
    /** @param max_block_size paper default: four qubits. */
    explicit ScanPartitioner(int max_block_size = 4);

    /**
     * Partition a measurement-free circuit. Every gate lands in
     * exactly one block; blocks are emitted in a valid topological
     * order.
     */
    std::vector<Block> partition(const Circuit &circuit) const;

  private:
    int maxBlockSize;
};

/**
 * Stitch blocks back into a full circuit on @p n_qubits wires (used
 * after per-block synthesis, and by the partition correctness tests).
 */
Circuit assembleBlocks(const std::vector<Block> &blocks, int n_qubits);

} // namespace quest

#endif // QUEST_PARTITION_SCAN_PARTITIONER_HH
