/**
 * @file
 * SWAP-insertion routing: map a logical circuit onto a device
 * coupling graph (the layout-aware mapping half of the baseline
 * compiler stack the paper compares against).
 */

#ifndef QUEST_ROUTE_ROUTER_HH
#define QUEST_ROUTE_ROUTER_HH

#include <vector>

#include "ir/circuit.hh"
#include "route/coupling_map.hh"
#include "sim/distribution.hh"

namespace quest {

/** Result of routing: the physical circuit plus the wire mappings. */
struct RoutingResult
{
    /** The routed circuit on physical wires (SWAPs inserted). */
    Circuit circuit;

    /** initialLayout[logical] = physical wire before the circuit. */
    std::vector<int> initialLayout;

    /** finalLayout[logical] = physical wire after the circuit (the
     *  inserted SWAPs move logical qubits around). */
    std::vector<int> finalLayout;

    /** Number of SWAP gates inserted. */
    size_t swapCount = 0;
};

/**
 * Greedy shortest-path router: multi-qubit gates between distant
 * wires are preceded by SWAPs that walk the first operand toward the
 * second along a BFS shortest path. The identity initial layout is
 * used (the greedy layout choice is deliberately simple; the paper's
 * point is that mapping alone cannot recover deep-circuit fidelity).
 *
 * Gates wider than two qubits must be lowered first (panics
 * otherwise). Measurements are re-emitted on the final physical wire
 * of their logical qubit.
 */
RoutingResult routeCircuit(const Circuit &circuit,
                           const CouplingMap &device);

/**
 * Undo the routing permutation on a measurement distribution over
 * physical wires, yielding the distribution over logical wires (for
 * verifying routed circuits and for interpreting device results).
 */
Distribution unpermuteDistribution(const Distribution &physical,
                                   const std::vector<int> &final_layout);

} // namespace quest

#endif // QUEST_ROUTE_ROUTER_HH
