#include "route/router.hh"

#include "util/logging.hh"

namespace quest {

RoutingResult
routeCircuit(const Circuit &circuit, const CouplingMap &device)
{
    const int n_logical = circuit.numQubits();
    const int n_physical = device.numQubits();
    QUEST_ASSERT(n_logical <= n_physical,
                 "circuit needs ", n_logical, " qubits but device has ",
                 n_physical);

    RoutingResult result;
    result.circuit = Circuit(n_physical);
    result.initialLayout.resize(n_logical);
    for (int l = 0; l < n_logical; ++l)
        result.initialLayout[l] = l;

    std::vector<int> layout = result.initialLayout;  // logical -> phys
    std::vector<int> occupant(n_physical, -1);       // phys -> logical
    for (int l = 0; l < n_logical; ++l)
        occupant[l] = l;

    auto emit_swap = [&](int pa, int pb) {
        result.circuit.append(Gate::swap(pa, pb));
        ++result.swapCount;
        std::swap(occupant[pa], occupant[pb]);
        if (occupant[pa] >= 0)
            layout[occupant[pa]] = pa;
        if (occupant[pb] >= 0)
            layout[occupant[pb]] = pb;
    };

    for (const Gate &g : circuit) {
        switch (g.arity()) {
          case 1: {
            Gate mapped = g;
            mapped.qubits[0] = layout[g.qubits[0]];
            result.circuit.append(std::move(mapped));
            break;
          }
          case 2: {
            int pa = layout[g.qubits[0]];
            const int pb = layout[g.qubits[1]];
            // Walk the first operand toward the second along a
            // shortest path.
            while (device.distance(pa, pb) > 1) {
                int best = -1;
                for (int next : device.neighbors(pa)) {
                    if (best < 0 || device.distance(next, pb) <
                                        device.distance(best, pb)) {
                        best = next;
                    }
                }
                QUEST_ASSERT(best >= 0, "routing walked off the graph");
                emit_swap(pa, best);
                pa = best;
            }
            Gate mapped = g;
            mapped.qubits[0] = pa;
            mapped.qubits[1] = pb;
            result.circuit.append(std::move(mapped));
            break;
          }
          default:
            if (g.type == GateType::Barrier) {
                std::vector<int> wires;
                for (int q : g.qubits)
                    wires.push_back(layout[q]);
                result.circuit.append(Gate::barrier(std::move(wires)));
                break;
            }
            QUEST_PANIC("route a lowered circuit (gate ",
                        gateName(g.type), " is ", g.arity(),
                        "-qubit wide)");
        }
    }

    result.finalLayout = layout;
    return result;
}

Distribution
unpermuteDistribution(const Distribution &physical,
                      const std::vector<int> &final_layout)
{
    const int n_physical = physical.numQubits();
    const int n_logical = static_cast<int>(final_layout.size());
    QUEST_ASSERT(n_logical <= n_physical, "layout wider than device");

    Distribution logical(n_logical);
    for (size_t kp = 0; kp < physical.size(); ++kp) {
        size_t kl = 0;
        for (int l = 0; l < n_logical; ++l) {
            size_t bit =
                (kp >> (n_physical - 1 - final_layout[l])) & 1u;
            kl |= bit << (n_logical - 1 - l);
        }
        logical[kl] += physical[kp];
    }
    return logical;
}

} // namespace quest
