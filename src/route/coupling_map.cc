#include "route/coupling_map.hh"

#include <algorithm>
#include <queue>

#include "util/logging.hh"

namespace quest {

CouplingMap::CouplingMap(int n_qubits,
                         std::vector<std::pair<int, int>> edges)
    : nQubits(n_qubits), edgeList(std::move(edges)),
      adjacency(n_qubits)
{
    QUEST_ASSERT(n_qubits >= 1, "coupling map needs qubits");
    for (auto &[a, b] : edgeList) {
        QUEST_ASSERT(a >= 0 && a < n_qubits && b >= 0 && b < n_qubits &&
                     a != b,
                     "bad edge (", a, ",", b, ")");
        if (a > b)
            std::swap(a, b);
    }
    std::sort(edgeList.begin(), edgeList.end());
    edgeList.erase(std::unique(edgeList.begin(), edgeList.end()),
                   edgeList.end());
    for (auto [a, b] : edgeList) {
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
    }

    // All-pairs hop distances by BFS from every node.
    distances.assign(n_qubits, std::vector<int>(n_qubits, -1));
    for (int start = 0; start < n_qubits; ++start) {
        std::queue<int> frontier;
        distances[start][start] = 0;
        frontier.push(start);
        while (!frontier.empty()) {
            int q = frontier.front();
            frontier.pop();
            for (int next : adjacency[q]) {
                if (distances[start][next] < 0) {
                    distances[start][next] = distances[start][q] + 1;
                    frontier.push(next);
                }
            }
        }
    }
}

CouplingMap
CouplingMap::line(int n_qubits)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n_qubits; ++i)
        edges.emplace_back(i, i + 1);
    return {n_qubits, std::move(edges)};
}

CouplingMap
CouplingMap::ring(int n_qubits)
{
    QUEST_ASSERT(n_qubits >= 3, "ring needs at least three qubits");
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n_qubits; ++i)
        edges.emplace_back(i, (i + 1) % n_qubits);
    return {n_qubits, std::move(edges)};
}

CouplingMap
CouplingMap::grid(int rows, int cols)
{
    QUEST_ASSERT(rows >= 1 && cols >= 1, "bad grid shape");
    std::vector<std::pair<int, int>> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return {rows * cols, std::move(edges)};
}

CouplingMap
CouplingMap::fullyConnected(int n_qubits)
{
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < n_qubits; ++a)
        for (int b = a + 1; b < n_qubits; ++b)
            edges.emplace_back(a, b);
    return {n_qubits, std::move(edges)};
}

bool
CouplingMap::connected(int a, int b) const
{
    for (int next : adjacency[a])
        if (next == b)
            return true;
    return false;
}

int
CouplingMap::distance(int a, int b) const
{
    QUEST_ASSERT(a >= 0 && a < nQubits && b >= 0 && b < nQubits,
                 "qubit out of range");
    int d = distances[a][b];
    QUEST_ASSERT(d >= 0, "coupling graph is disconnected between ", a,
                 " and ", b);
    return d;
}

} // namespace quest
