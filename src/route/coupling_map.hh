/**
 * @file
 * Device coupling maps: which physical qubit pairs support a CNOT.
 *
 * Used by the router (the layout-aware half of the Qiskit-like
 * baseline) and by topology-restricted synthesis. IBMQ Manila — the
 * paper's hardware target — is a five-qubit line.
 */

#ifndef QUEST_ROUTE_COUPLING_MAP_HH
#define QUEST_ROUTE_COUPLING_MAP_HH

#include <utility>
#include <vector>

namespace quest {

/** Undirected device connectivity graph. */
class CouplingMap
{
  public:
    /** Build from an explicit undirected edge list. */
    CouplingMap(int n_qubits, std::vector<std::pair<int, int>> edges);

    /** Linear chain 0-1-...-(n-1). */
    static CouplingMap line(int n_qubits);

    /** Ring topology. */
    static CouplingMap ring(int n_qubits);

    /** rows x cols grid. */
    static CouplingMap grid(int rows, int cols);

    /** Fully connected (no routing needed). */
    static CouplingMap fullyConnected(int n_qubits);

    /** IBMQ Manila: a five-qubit line. */
    static CouplingMap ibmqManila() { return line(5); }

    int numQubits() const { return nQubits; }
    const std::vector<std::pair<int, int>> &edges() const
    {
        return edgeList;
    }

    /** True if a CNOT between a and b is directly executable. */
    bool connected(int a, int b) const;

    /** Neighbors of physical qubit q. */
    const std::vector<int> &neighbors(int q) const
    {
        return adjacency[q];
    }

    /** Hop distance between two physical qubits (BFS, precomputed).
     *  Panics if the graph is disconnected. */
    int distance(int a, int b) const;

  private:
    int nQubits;
    std::vector<std::pair<int, int>> edgeList;
    std::vector<std::vector<int>> adjacency;
    std::vector<std::vector<int>> distances;
};

} // namespace quest

#endif // QUEST_ROUTE_COUPLING_MAP_HH
