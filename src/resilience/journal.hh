/**
 * @file
 * Append-only crash-safe record journal ("QRJ1", docs/FORMATS.md).
 *
 * The checkpoint/resume machinery needs a log that a killed process
 * can reopen and trust: opening a journal scans it record by record,
 * verifies each length and FNV-1a checksum, and truncates the file at
 * the first damaged or half-written record — everything before the
 * damage is kept, everything after is discarded. Appends are a single
 * buffered write plus flush, so a crash can only ever lose or tear
 * the *tail* record, never an earlier one.
 *
 * The journal is deliberately generic (u32 record type + opaque
 * payload bytes); QUEST-specific record codecs live above it in
 * src/quest/checkpoint.hh, because circuit encoding depends on
 * layers this one sits below.
 *
 * Append failures (disk full, I/O error) do not throw: checkpointing
 * is an optimisation, so a broken journal degrades to "no checkpoint"
 * — the journal goes read-only for the rest of the run, warns once,
 * and counts `resilience.journal_failures`.
 */

#ifndef QUEST_RESILIENCE_JOURNAL_HH
#define QUEST_RESILIENCE_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace quest::resilience {

/** One verified record read back from a journal. */
struct JournalRecord
{
    uint32_t type = 0;
    std::vector<uint8_t> payload;
};

/** Append-only record log with tail-scan crash recovery. */
class Journal
{
  public:
    static constexpr char kMagic[4] = {'Q', 'R', 'J', '1'};
    static constexpr uint32_t kVersion = 1;

    /**
     * Open (or create) the journal at @p path, recovering any valid
     * prefix of an existing file. Throws QuestError(Io) when the file
     * cannot be created or opened for appending.
     */
    explicit Journal(const std::string &path);

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Append one record and flush it to the OS. Returns false (and
     * goes permanently read-only) on write failure; never throws.
     */
    bool append(uint32_t type, const std::vector<uint8_t> &payload);

    /** Records recovered at open time, in append order. The vector
     *  does NOT grow on append — it is the resume snapshot. */
    const std::vector<JournalRecord> &records() const { return recovered; }

    /** Truncate to an empty journal (header only). */
    void reset();

    /** True once an append has failed; later appends are dropped. */
    bool failed() const { return writeFailed; }

    /** Bytes that had to be discarded by tail recovery at open. */
    uint64_t truncatedBytes() const { return droppedBytes; }

    const std::string &path() const { return filePath; }

  private:
    void recover();
    void openForAppend(bool truncate);

    std::string filePath;
    std::ofstream out;
    std::vector<JournalRecord> recovered;
    uint64_t droppedBytes = 0;
    bool writeFailed = false;
};

} // namespace quest::resilience

#endif // QUEST_RESILIENCE_JOURNAL_HH
