/**
 * @file
 * Deterministic fault injection for resilience tests.
 *
 * Production code marks its failure-prone spots with named fault
 * points:
 *
 *     if (QUEST_FAULT_POINT(names::kFaultCacheStoreEnospc))
 *         return simulateDiskFull();
 *
 * Site names are declared in src/util/names.hh and documented in
 * docs/REGISTRY.md (tests may use ad hoc names under the documented
 * ephemeral prefixes).
 *
 * A FaultPlan — installed programmatically by tests or parsed from
 * the QUEST_FAULT environment variable ("site:trigger,site:trigger")
 * — decides which points fire and when. Triggers are deterministic
 * functions of the per-site call count, so a fault schedule replays
 * identically run after run:
 *
 *     always     every call
 *     once       the first call only
 *     nth=N      the Nth call only (1-based)
 *     after=N    every call past the Nth
 *     every=N    every Nth call
 *
 * With no plan installed the whole machinery costs one relaxed
 * atomic load per fault point (QUEST_FAULT_POINT short-circuits on
 * FaultPlan::armed()), and compiling with -DQUEST_FAULT_DISABLED
 * removes even that. Fired faults are counted in the metrics
 * registry (`resilience.faults_injected` plus `fault.<site>`).
 */

#ifndef QUEST_RESILIENCE_FAULT_HH
#define QUEST_RESILIENCE_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace quest::resilience {

/** When a fault rule fires, as a function of the site call count. */
enum class FaultTrigger { Always, Once, Nth, After, Every };

/** One "site:trigger" clause of a fault plan. */
struct FaultRule
{
    std::string site;
    FaultTrigger trigger = FaultTrigger::Always;
    uint64_t n = 0; //!< parameter of nth=/after=/every=
};

/**
 * A set of fault rules plus the process-wide installation slot.
 * Installation replaces the previous plan atomically with respect to
 * fire(); per-site call counts restart from zero.
 */
class FaultPlan
{
  public:
    /**
     * Parse "site:trigger[,site:trigger...]" (e.g.
     * "cache.store.enospc:once,synth.block.diverge:nth=2").
     * Throws QuestError(InvalidInput) on a malformed spec.
     */
    static FaultPlan parse(const std::string &spec);

    /** Install @p plan process-wide (empty plan ≙ disarm()). */
    static void install(FaultPlan plan);

    /** Remove the installed plan; fault points go quiescent. */
    static void disarm();

    /** True while a non-empty plan is installed (the fast path). */
    static bool
    armed()
    {
        return armedFlag().load(std::memory_order_acquire);
    }

    /**
     * Record one call at @p site and decide whether it faults. Slow
     * path — only reached while a plan is armed. Thread-safe.
     */
    static bool fire(const char *site);

    /** Total faults fired since the current plan was installed. */
    static uint64_t firedCount();

    void addRule(FaultRule rule) { rules.push_back(std::move(rule)); }

    bool empty() const { return rules.empty(); }

    const std::vector<FaultRule> &ruleList() const { return rules; }

  private:
    static std::atomic<bool> &armedFlag();

    std::vector<FaultRule> rules;
};

/**
 * RAII plan installation for tests: installs on construction,
 * disarms on destruction (tests never leak an armed plan).
 */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const std::string &spec)
    {
        FaultPlan::install(FaultPlan::parse(spec));
    }
    explicit ScopedFaultPlan(FaultPlan plan)
    {
        FaultPlan::install(std::move(plan));
    }
    ~ScopedFaultPlan() { FaultPlan::disarm(); }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace quest::resilience

#ifdef QUEST_FAULT_DISABLED
#define QUEST_FAULT_POINT(site) false
#else
#define QUEST_FAULT_POINT(site)                                        \
    (::quest::resilience::FaultPlan::armed() &&                        \
     ::quest::resilience::FaultPlan::fire(site))
#endif

#endif // QUEST_RESILIENCE_FAULT_HH
