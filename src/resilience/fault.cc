#include "resilience/fault.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.hh"
#include "resilience/error.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest::resilience {

namespace {

/** The installed plan plus per-site call counts, mutex-guarded —
 *  this is the slow path, reached only while a plan is armed. */
struct InstalledPlan
{
    std::mutex m;
    FaultPlan plan;
    std::map<std::string, uint64_t> calls;
    uint64_t fired = 0;
};

InstalledPlan &
installed()
{
    static InstalledPlan p;
    return p;
}

uint64_t
parseCount(const std::string &spec, const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        throw QuestError(ErrorCategory::InvalidInput,
                         "bad fault trigger count '" + value +
                             "' in '" + spec + "'");
    uint64_t n = std::strtoull(value.c_str(), nullptr, 10);
    if (n == 0)
        throw QuestError(ErrorCategory::InvalidInput,
                         "fault trigger count must be >= 1 in '" +
                             spec + "'");
    return n;
}

FaultRule
parseRule(const std::string &spec, const std::string &clause)
{
    const size_t colon = clause.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= clause.size())
        throw QuestError(ErrorCategory::InvalidInput,
                         "expected 'site:trigger', got '" + clause +
                             "' in '" + spec + "'");

    FaultRule rule;
    rule.site = clause.substr(0, colon);
    std::string trig = clause.substr(colon + 1);
    std::string value;
    const size_t eq = trig.find('=');
    if (eq != std::string::npos) {
        value = trig.substr(eq + 1);
        trig.resize(eq);
    }

    if (trig == "always") {
        rule.trigger = FaultTrigger::Always;
    } else if (trig == "once") {
        rule.trigger = FaultTrigger::Once;
    } else if (trig == "nth") {
        rule.trigger = FaultTrigger::Nth;
        rule.n = parseCount(spec, value);
    } else if (trig == "after") {
        rule.trigger = FaultTrigger::After;
        rule.n = parseCount(spec, value);
    } else if (trig == "every") {
        rule.trigger = FaultTrigger::Every;
        rule.n = parseCount(spec, value);
    } else {
        throw QuestError(ErrorCategory::InvalidInput,
                         "unknown fault trigger '" + trig + "' in '" +
                             spec + "'");
    }
    if ((rule.trigger == FaultTrigger::Always ||
         rule.trigger == FaultTrigger::Once) &&
        eq != std::string::npos)
        throw QuestError(ErrorCategory::InvalidInput,
                         "trigger '" + trig +
                             "' takes no count in '" + spec + "'");
    return rule;
}

/** @p count is the 1-based call number at the rule's site. */
bool
ruleFires(const FaultRule &rule, uint64_t count)
{
    switch (rule.trigger) {
      case FaultTrigger::Always:
        return true;
      case FaultTrigger::Once:
        return count == 1;
      case FaultTrigger::Nth:
        return count == rule.n;
      case FaultTrigger::After:
        return count > rule.n;
      case FaultTrigger::Every:
        return count % rule.n == 0;
    }
    return false;
}

/** Parse $QUEST_FAULT at startup; a bad spec warns instead of
 *  throwing (exceptions cannot unwind out of static init). */
struct EnvInstall
{
    EnvInstall()
    {
        const char *spec = std::getenv("QUEST_FAULT");
        if (!spec || !*spec)
            return;
        try {
            FaultPlan::install(FaultPlan::parse(spec));
        } catch (const QuestError &e) {
            warn("ignoring QUEST_FAULT: ", e.what());
        }
    }
} g_env_install;

} // namespace

std::atomic<bool> &
FaultPlan::armedFlag()
{
    static std::atomic<bool> armed{false};
    return armed;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string clause = spec.substr(start, comma - start);
        if (!clause.empty())
            plan.addRule(parseRule(spec, clause));
        start = comma + 1;
    }
    if (plan.empty())
        throw QuestError(ErrorCategory::InvalidInput,
                         "empty fault plan '" + spec + "'");
    return plan;
}

void
FaultPlan::install(FaultPlan plan)
{
    auto &slot = installed();
    const bool arm = !plan.empty();
    {
        std::lock_guard<std::mutex> lock(slot.m);
        slot.plan = std::move(plan);
        slot.calls.clear();
        slot.fired = 0;
    }
    armedFlag().store(arm, std::memory_order_release);
}

void
FaultPlan::disarm()
{
    install(FaultPlan{});
}

bool
FaultPlan::fire(const char *site)
{
    auto &slot = installed();
    bool fires = false;
    {
        std::lock_guard<std::mutex> lock(slot.m);
        const uint64_t count = ++slot.calls[site];
        for (const FaultRule &rule : slot.plan.ruleList()) {
            if (rule.site == site && ruleFires(rule, count)) {
                fires = true;
                break;
            }
        }
        if (fires)
            ++slot.fired;
    }
    if (fires) {
        static auto &total = obs::MetricsRegistry::global().counter(
            names::kMetricFaultsInjected);
        total.increment();
        obs::MetricsRegistry::global()
            .counter(std::string(names::kMetricFaultPrefix) + site)
            .increment();
    }
    return fires;
}

uint64_t
FaultPlan::firedCount()
{
    auto &slot = installed();
    std::lock_guard<std::mutex> lock(slot.m);
    return slot.fired;
}

} // namespace quest::resilience
