#include "resilience/budget.hh"

namespace quest::resilience {

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::None:
        return "none";
      case StopReason::Cancelled:
        return "cancelled";
      case StopReason::Deadline:
        return "deadline";
    }
    return "unknown";
}

} // namespace quest::resilience
