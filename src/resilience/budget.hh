/**
 * @file
 * Cooperative interruption primitives: wall-clock deadlines,
 * hierarchical cancellation tokens, and the Budget that bundles them.
 *
 * QUEST's pipeline is a long-running numerical search whose inner
 * loops (L-BFGS iterations, annealing sweeps, per-level
 * instantiations) are individually short but collectively unbounded —
 * LEAP-style instantiation can diverge and dual annealing can spin on
 * a pathological objective. Every such loop polls a Budget at its
 * iteration boundary ("safe points"): the poll is two predictable
 * branches (and no clock read at all when no deadline is armed), so
 * an unbounded run pays nothing, while a bounded run is guaranteed to
 * stop within one iteration of the deadline or cancellation.
 *
 * Budgets are small value types threaded down through the option
 * structs (QuestConfig → SynthConfig → InstantiaterOptions →
 * LbfgsOptions, and AnnealOptions); CancelTokens are shared by
 * pointer and form a hierarchy: cancelling a parent cancels every
 * child that was derived from it, letting a run-level token interrupt
 * all per-block work at once.
 */

#ifndef QUEST_RESILIENCE_BUDGET_HH
#define QUEST_RESILIENCE_BUDGET_HH

#include <atomic>
#include <chrono>
#include <limits>

namespace quest::resilience {

/**
 * Hierarchical cancellation flag. cancel() is sticky and thread-safe;
 * cancelled() observes the whole parent chain, so a token derived
 * from a run-level token fires when either is cancelled. Parents must
 * outlive their children (the chain holds raw pointers).
 */
class CancelToken
{
  public:
    CancelToken() = default;
    explicit CancelToken(const CancelToken *parent) : parent(parent) {}

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation (idempotent, callable from any thread). */
    void cancel() { flag.store(true, std::memory_order_release); }

    /** True once this token or any ancestor has been cancelled. */
    bool
    cancelled() const
    {
        for (const CancelToken *t = this; t; t = t->parent) {
            if (t->flag.load(std::memory_order_acquire))
                return true;
        }
        return false;
    }

  private:
    std::atomic<bool> flag{false};
    const CancelToken *parent = nullptr;
};

/** A wall-clock deadline; default-constructed means "never". */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    Deadline() = default;

    static Deadline never() { return {}; }

    /** A deadline @p seconds from now (<= 0 expires immediately). */
    static Deadline
    after(double seconds)
    {
        Deadline d;
        d.armed = true;
        d.when = Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(seconds));
        return d;
    }

    static Deadline
    at(Clock::time_point t)
    {
        Deadline d;
        d.armed = true;
        d.when = t;
        return d;
    }

    bool isNever() const { return !armed; }

    /** True once the wall clock has passed the deadline. */
    bool expired() const { return armed && Clock::now() >= when; }

    /** Seconds left (+inf when never armed, clamped at zero). */
    double
    remainingSeconds() const
    {
        if (!armed)
            return std::numeric_limits<double>::infinity();
        const auto left =
            std::chrono::duration<double>(when - Clock::now()).count();
        return left > 0.0 ? left : 0.0;
    }

    /** The tighter of two deadlines. */
    static Deadline
    sooner(const Deadline &a, const Deadline &b)
    {
        if (a.isNever())
            return b;
        if (b.isNever())
            return a;
        return a.when <= b.when ? a : b;
    }

  private:
    Clock::time_point when{};
    bool armed = false;
};

/** Why a budgeted computation was asked to stop. */
enum class StopReason { None, Cancelled, Deadline };

/**
 * The interruption context threaded through long-running loops: a
 * deadline plus an optional (not owned) cancellation token. Copyable
 * and cheap to poll; a default-constructed Budget never stops
 * anything.
 */
struct Budget
{
    Deadline deadline;
    const CancelToken *cancel = nullptr;

    Budget() = default;
    Budget(Deadline d, const CancelToken *c) : deadline(d), cancel(c) {}

    /** True when neither a deadline nor a token is configured. */
    bool unbounded() const { return deadline.isNever() && !cancel; }

    /** Cancellation wins over deadline so the reported reason is
     *  stable once a token fires. */
    StopReason
    stop() const
    {
        if (cancel && cancel->cancelled())
            return StopReason::Cancelled;
        if (deadline.expired())
            return StopReason::Deadline;
        return StopReason::None;
    }

    bool exhausted() const { return stop() != StopReason::None; }

    /**
     * Derive a tighter budget: same token, the sooner of this
     * deadline and @p extra. Used for per-block deadlines nested
     * inside a run deadline.
     */
    Budget
    withDeadline(const Deadline &extra) const
    {
        return {Deadline::sooner(deadline, extra), cancel};
    }
};

/** Human-readable stop reason ("cancelled" / "deadline" / "none"). */
const char *stopReasonName(StopReason reason);

} // namespace quest::resilience

#endif // QUEST_RESILIENCE_BUDGET_HH
