/**
 * @file
 * Structured error taxonomy for recoverable failures.
 *
 * The repo distinguishes three failure classes: internal invariant
 * violations (QUEST_PANIC — a bug, aborts), malformed untrusted bytes
 * (SerializeError/QasmError — thrown by decoders), and operational
 * failures of a compile run (this file): timeouts, cancellation,
 * numerical divergence, I/O trouble. QuestError carries an
 * ErrorCategory so handlers can act on the *kind* of failure — the
 * pipeline maps per-block errors to BlockOutcome statuses and falls
 * back to the original block, while quest_compile maps run-level
 * errors to documented distinct exit codes — plus a context chain
 * that is appended as the error unwinds ("while synthesizing block
 * 3", "while compiling foo.qasm"), so a one-line diagnostic names
 * the whole path to the failure.
 */

#ifndef QUEST_RESILIENCE_ERROR_HH
#define QUEST_RESILIENCE_ERROR_HH

#include <stdexcept>
#include <string>
#include <vector>

namespace quest::resilience {

/** Failure kinds, each with a distinct documented exit code. */
enum class ErrorCategory {
    InvalidInput, //!< malformed user input (bad QASM, bad flag value)
    Io,           //!< file/directory read, write or create failure
    Timeout,      //!< a configured deadline expired
    Cancelled,    //!< a CancelToken fired
    Diverged,     //!< numerical search produced non-finite costs
    Resource,     //!< resource exhaustion (disk full, ...)
    Internal,     //!< unexpected failure that is not a panic
};

/** Stable lower-case name ("timeout", "io", ...). */
const char *errorCategoryName(ErrorCategory category);

/**
 * Documented process exit code for a category. Disjoint from 0
 * (success), 1 (legacy fatal()) and 2 (CLI usage error):
 *
 *   invalid-input 10, io 11, timeout 12, cancelled 13, diverged 14,
 *   resource 15, internal 70.
 */
int exitCodeFor(ErrorCategory category);

/** A categorized, context-chained operational error. */
class QuestError : public std::runtime_error
{
  public:
    QuestError(ErrorCategory category, const std::string &message);

    ErrorCategory category() const { return cat; }

    /** Exit code for this error's category. */
    int exitCode() const { return exitCodeFor(cat); }

    /**
     * Append one unwind frame (outermost last). Returns *this so
     * rethrow sites can write `throw e.withContext("while ...")`.
     */
    QuestError &withContext(const std::string &frame);

    const std::vector<std::string> &context() const { return frames; }

    /** "category: message (frame; frame; ...)" — also what(). */
    const std::string &describe() const { return rendered; }

    const char *what() const noexcept override
    {
        return rendered.c_str();
    }

  private:
    void render();

    ErrorCategory cat;
    std::string message;
    std::vector<std::string> frames;
    std::string rendered;
};

} // namespace quest::resilience

#endif // QUEST_RESILIENCE_ERROR_HH
