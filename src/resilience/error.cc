#include "resilience/error.hh"

#include "util/names.hh"

namespace quest::resilience {

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::InvalidInput:
        return "invalid-input";
      case ErrorCategory::Io:
        return "io";
      case ErrorCategory::Timeout:
        return "timeout";
      case ErrorCategory::Cancelled:
        return "cancelled";
      case ErrorCategory::Diverged:
        return "diverged";
      case ErrorCategory::Resource:
        return "resource";
      case ErrorCategory::Internal:
        return "internal";
    }
    return "internal";
}

int
exitCodeFor(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::InvalidInput:
        return names::kExitInvalidInput;
      case ErrorCategory::Io:
        return names::kExitIo;
      case ErrorCategory::Timeout:
        return names::kExitTimeout;
      case ErrorCategory::Cancelled:
        return names::kExitCancelled;
      case ErrorCategory::Diverged:
        return names::kExitDiverged;
      case ErrorCategory::Resource:
        return names::kExitResource;
      case ErrorCategory::Internal:
        return names::kExitInternal;
    }
    return names::kExitInternal;
}

QuestError::QuestError(ErrorCategory category, const std::string &msg)
    : std::runtime_error(msg), cat(category), message(msg)
{
    render();
}

QuestError &
QuestError::withContext(const std::string &frame)
{
    frames.push_back(frame);
    render();
    return *this;
}

void
QuestError::render()
{
    rendered = errorCategoryName(cat);
    rendered += ": ";
    rendered += message;
    if (!frames.empty()) {
        rendered += " (";
        for (size_t i = 0; i < frames.size(); ++i) {
            if (i)
                rendered += "; ";
            rendered += frames[i];
        }
        rendered += ")";
    }
}

} // namespace quest::resilience
