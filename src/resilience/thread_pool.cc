#include "resilience/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>

namespace quest {

namespace {

std::atomic<unsigned> g_live_workers{0};
std::atomic<unsigned> g_peak_workers{0};

void
noteWorkerStarted()
{
    unsigned live =
        g_live_workers.fetch_add(1, std::memory_order_relaxed) + 1;
    unsigned peak = g_peak_workers.load(std::memory_order_relaxed);
    while (live > peak &&
           !g_peak_workers.compare_exchange_weak(
               peak, live, std::memory_order_relaxed)) {
    }
}

void
noteWorkerStopped()
{
    g_live_workers.fetch_sub(1, std::memory_order_relaxed);
}

/**
 * One parallelFor call's shared state. Indices are claimed from
 * `next`; whoever claims an index runs it, so a claimed index is
 * always being actively executed by some thread — the caller's final
 * wait is only ever for in-flight executions, never for queued work,
 * which is what makes nested calls on one pool deadlock-free.
 */
struct Batch
{
    size_t count = 0;
    const std::function<void(size_t)> *fn = nullptr;
    const resilience::CancelToken *cancel = nullptr;
    std::atomic<size_t> next{0};

    std::mutex m;
    std::condition_variable doneCv;
    size_t done = 0;
    size_t firstBadIndex = static_cast<size_t>(-1);
    std::exception_ptr error;
};

void
runBatchIndex(Batch &b, size_t i)
{
    try {
        (*b.fn)(i);
    } catch (...) {
        std::lock_guard<std::mutex> lock(b.m);
        if (i < b.firstBadIndex) {
            b.firstBadIndex = i;
            b.error = std::current_exception();
        }
    }
    std::lock_guard<std::mutex> lock(b.m);
    if (++b.done == b.count)
        b.doneCv.notify_all();
}

void
drainBatch(Batch &b)
{
    for (;;) {
        if (b.cancel && b.cancel->cancelled()) {
            // Retire every unclaimed index without running it. The
            // exchange hands this drainer the range [i, count); other
            // drainers racing here (or past the end on the normal
            // path) observe i >= count and account nothing twice.
            size_t i = b.next.exchange(b.count,
                                       std::memory_order_relaxed);
            if (i < b.count) {
                std::lock_guard<std::mutex> lock(b.m);
                b.done += b.count - i;
                if (b.done == b.count)
                    b.doneCv.notify_all();
            }
            return;
        }
        size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b.count)
            return;
        runBatchIndex(b, i);
    }
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        // Count on the constructing thread so liveWorkers() is exact
        // the moment the constructor returns; the worker uncounts
        // itself, which join() in the destructor happens-after.
        noteWorkerStarted();
        workers.emplace_back([this]() {
            workerLoop();
            noteWorkerStopped();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wakeup.notify_all();
    for (auto &worker : workers)
        worker.join();

    // With no workers, submitted jobs would otherwise be dropped.
    while (!jobs.empty()) {
        jobs.front()();
        jobs.pop();
    }
}

unsigned
ThreadPool::hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

unsigned
ThreadPool::liveWorkers()
{
    return g_live_workers.load(std::memory_order_relaxed);
}

unsigned
ThreadPool::peakLiveWorkers()
{
    return g_peak_workers.load(std::memory_order_relaxed);
}

void
ThreadPool::resetPeakLiveWorkers()
{
    g_peak_workers.store(g_live_workers.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        jobs.push(std::move(job));
    }
    wakeup.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeup.wait(lock, [this]() { return stopping || !jobs.empty(); });
            if (stopping && jobs.empty())
                return;
            job = std::move(jobs.front());
            jobs.pop();
        }
        job();
    }
}

void
ThreadPool::parallelFor(size_t count, const std::function<void(size_t)> &fn,
                        const resilience::CancelToken *cancel)
{
    if (count == 0)
        return;

    auto batch = std::make_shared<Batch>();
    batch->count = count;
    batch->fn = &fn;
    batch->cancel = cancel;

    // Helper jobs hold the batch alive; one that starts after the
    // batch is finished claims an out-of-range index and returns
    // without touching `fn` (whose lifetime ends when this call
    // returns — guaranteed because done == count implies every
    // invocation of fn has completed).
    const size_t helpers =
        std::min(count, static_cast<size_t>(workers.size()));
    for (size_t h = 0; h < helpers; ++h)
        enqueue([batch]() { drainBatch(*batch); });

    drainBatch(*batch);

    std::unique_lock<std::mutex> lock(batch->m);
    batch->doneCv.wait(lock,
                       [&]() { return batch->done == batch->count; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace quest
