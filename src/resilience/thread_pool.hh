/**
 * @file
 * Fixed-size thread pool used to synthesize circuit blocks in
 * parallel (the paper runs block synthesis on up to ten nodes; we use
 * threads on one node).
 *
 * parallelFor is cooperative: the calling thread claims and runs
 * batch indices alongside the workers, and a worker that calls
 * parallelFor on its own pool drains its nested batch itself instead
 * of blocking on queued tasks. That makes one pool safely shareable
 * across nesting levels — the QUEST pipeline threads a single thread
 * budget through both block-level and instantiation-level parallelism
 * (QuestConfig::threads), so the process never oversubscribes the
 * hardware no matter how the levels nest.
 *
 * parallelFor optionally takes a CancelToken: once the token fires,
 * no *unclaimed* index starts. Indices already claimed by a thread
 * run to completion (the callback is expected to poll its own Budget
 * at iteration boundaries), so cancellation latency is bounded by
 * one callback invocation, and the done-accounting stays exact.
 */

#ifndef QUEST_RESILIENCE_THREAD_POOL_HH
#define QUEST_RESILIENCE_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "resilience/budget.hh"

namespace quest {

/** Simple work-queue thread pool with cooperative parallelFor. */
class ThreadPool
{
  public:
    /**
     * Spawn exactly @p threads workers. Zero is valid: no workers are
     * spawned and parallelFor runs every index inline on the caller —
     * the natural encoding of "a budget of one thread" given that the
     * caller always participates.
     */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** std::thread::hardware_concurrency, floored at one. */
    static unsigned hardwareConcurrency();

    /** Enqueue a task and get a future for its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> result = task->get_future();
        enqueue([task]() { (*task)(); });
        return result;
    }

    /**
     * Run @p fn(i) for i in [0, count) and wait for all of them —
     * even when some throw, so @p fn is never invoked after the call
     * returns. The lowest failing index's exception is rethrown once
     * every index has finished.
     *
     * The caller participates: indices are claimed from a shared
     * atomic cursor by the workers and the calling thread alike, so
     * at most size() + 1 threads run @p fn concurrently and nested
     * calls on the same pool make progress even when every worker is
     * busy.
     *
     * When @p cancel is non-null and fires mid-batch, indices not yet
     * claimed are skipped (never invoked); parallelFor still waits
     * for every in-flight invocation, returns normally, and leaves it
     * to the caller to observe the token. Exceptions thrown by @p fn
     * are rethrown as usual.
     */
    void parallelFor(size_t count, const std::function<void(size_t)> &fn,
                     const resilience::CancelToken *cancel = nullptr);

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /** @name Process-wide worker accounting (regression tests).
     *  Counts live workers across every ThreadPool instance. */
    /// @{
    static unsigned liveWorkers();
    static unsigned peakLiveWorkers();
    static void resetPeakLiveWorkers();
    /// @}

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::vector<std::thread> workers;
    std::queue<std::function<void()>> jobs;
    std::mutex mutex;
    std::condition_variable wakeup;
    bool stopping = false;
};

} // namespace quest

#endif // QUEST_RESILIENCE_THREAD_POOL_HH
