#include "resilience/journal.hh"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "obs/metrics.hh"
#include "resilience/error.hh"
#include "resilience/fault.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/names.hh"

namespace fs = std::filesystem;

namespace quest::resilience {

namespace {

constexpr size_t kHeaderBytes = 4 + 4;      // magic + version
constexpr size_t kRecordHeader = 4 + 4 + 8; // type + len + checksum

// Cap on a single record so a corrupt length field cannot trigger a
// multi-gigabyte allocation during recovery.
constexpr uint32_t kMaxRecordBytes = 1u << 28;

void
countJournalFailure()
{
    static auto &failures = obs::MetricsRegistry::global().counter(
        names::kMetricJournalFailures);
    failures.increment();
}

} // namespace

Journal::Journal(const std::string &path) : filePath(path)
{
    recover();
}

void
Journal::recover()
{
    std::error_code ec;
    const bool exists = fs::exists(filePath, ec);
    if (ec || !exists) {
        openForAppend(/*truncate=*/true);
        return;
    }

    std::vector<uint8_t> bytes;
    {
        std::ifstream in(filePath, std::ios::binary);
        if (!in)
            throw QuestError(ErrorCategory::Io,
                             "cannot read journal '" + filePath + "'");
        in.seekg(0, std::ios::end);
        const auto size = in.tellg();
        in.seekg(0, std::ios::beg);
        bytes.resize(size > 0 ? static_cast<size_t>(size) : 0);
        if (!bytes.empty())
            in.read(reinterpret_cast<char *>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size()));
        if (!in)
            throw QuestError(ErrorCategory::Io,
                             "cannot read journal '" + filePath + "'");
    }

    // A file too short for the header, or with the wrong magic or
    // version, is not ours to extend — start fresh.
    bool headerOk = bytes.size() >= kHeaderBytes &&
                    std::memcmp(bytes.data(), kMagic, 4) == 0;
    if (headerOk) {
        ByteReader versionReader(bytes.data() + 4, 4);
        headerOk = versionReader.u32() == kVersion;
    }
    if (!headerOk) {
        if (!bytes.empty())
            warn("journal '", filePath,
                 "': unrecognized header, starting fresh");
        droppedBytes = bytes.size();
        openForAppend(/*truncate=*/true);
        return;
    }

    // Scan records until the first one whose header, length or
    // checksum does not hold; keep the clean prefix.
    size_t good = kHeaderBytes;
    size_t pos = kHeaderBytes;
    while (pos < bytes.size()) {
        if (bytes.size() - pos < kRecordHeader)
            break;
        ByteReader rec(bytes.data() + pos, bytes.size() - pos);
        const uint32_t type = rec.u32();
        const uint32_t len = rec.u32();
        const uint64_t checksum = rec.u64();
        if (len > kMaxRecordBytes || rec.remaining() < len)
            break;
        const uint8_t *payload = bytes.data() + pos + kRecordHeader;
        if (fnv1a64(payload, len) != checksum)
            break;
        JournalRecord out;
        out.type = type;
        out.payload.assign(payload, payload + len);
        recovered.push_back(std::move(out));
        pos += kRecordHeader + len;
        good = pos;
    }

    droppedBytes = bytes.size() - good;
    if (droppedBytes > 0) {
        warn("journal '", filePath, "': discarding ", droppedBytes,
             " damaged trailing bytes (", recovered.size(),
             " records recovered)");
        std::error_code resizeEc;
        fs::resize_file(filePath, good, resizeEc);
        if (resizeEc)
            throw QuestError(ErrorCategory::Io,
                             "cannot truncate journal '" + filePath +
                                 "': " + resizeEc.message());
    }

    openForAppend(/*truncate=*/false);
}

void
Journal::openForAppend(bool truncate)
{
    auto mode = std::ios::binary | std::ios::out;
    mode |= truncate ? std::ios::trunc : std::ios::app;
    out.open(filePath, mode);
    if (!out)
        throw QuestError(ErrorCategory::Io,
                         "cannot open journal '" + filePath +
                             "' for writing");
    if (truncate) {
        ByteWriter header;
        header.bytes(kMagic, 4);
        header.u32(kVersion);
        out.write(reinterpret_cast<const char *>(
                      header.buffer().data()),
                  static_cast<std::streamsize>(header.size()));
        out.flush();
        if (!out)
            throw QuestError(ErrorCategory::Io,
                             "cannot write journal header '" +
                                 filePath + "'");
    }
}

bool
Journal::append(uint32_t type, const std::vector<uint8_t> &payload)
{
    if (writeFailed)
        return false;

    ByteWriter rec;
    rec.u32(type);
    rec.u32(static_cast<uint32_t>(payload.size()));
    rec.u64(fnv1a64(payload.data(), payload.size()));
    rec.bytes(payload.data(), payload.size());

    bool ok = !QUEST_FAULT_POINT(names::kFaultJournalAppend);
    if (ok) {
        out.write(reinterpret_cast<const char *>(rec.buffer().data()),
                  static_cast<std::streamsize>(rec.size()));
        out.flush();
        ok = static_cast<bool>(out);
    }
    if (!ok) {
        writeFailed = true;
        warn("journal '", filePath,
             "': append failed, checkpointing disabled for this run");
        countJournalFailure();
    }
    return ok;
}

void
Journal::reset()
{
    out.close();
    recovered.clear();
    droppedBytes = 0;
    writeFailed = false;
    openForAppend(/*truncate=*/true);
}

} // namespace quest::resilience
