#include "service/server.hh"

#include <algorithm>
#include <filesystem>

#include <sys/socket.h>
#include <unistd.h>

#include "cache/synthesis_cache.hh"
#include "ir/qasm.hh"
#include "obs/metrics.hh"
#include "quest/pipeline.hh"
#include "resilience/error.hh"
#include "resilience/fault.hh"
#include "util/annotations.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest::service {

namespace {

/** Service journal record types (payloads are QSV1 message bytes). */
constexpr uint32_t kRecSubmit = 1;   //!< u64 jobId + SubmitRequest
constexpr uint32_t kRecTerminal = 2; //!< u64 jobId + u8 state + i32 code

obs::Counter &
terminalCounter(JobState state)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &done = registry.counter(names::kMetricServiceJobsDone);
    static auto &failed =
        registry.counter(names::kMetricServiceJobsFailed);
    static auto &cancelled =
        registry.counter(names::kMetricServiceJobsCancelled);
    static auto &rejected =
        registry.counter(names::kMetricServiceJobsRejected);
    static auto &expired =
        registry.counter(names::kMetricServiceJobsExpired);
    switch (state) {
      case JobState::Done:
        return done;
      case JobState::Failed:
        return failed;
      case JobState::Cancelled:
        return cancelled;
      case JobState::Expired:
        return expired;
      case JobState::Rejected:
      default:
        return rejected;
    }
}

/** The registry's counters and gauges as (name, value) rows. */
std::vector<std::pair<std::string, uint64_t>>
metricsSnapshot()
{
    std::vector<std::pair<std::string, uint64_t>> kv;
    for (const obs::MetricSnapshot &m :
         obs::MetricsRegistry::global().snapshot()) {
        switch (m.kind) {
          case obs::MetricKind::Counter:
            kv.emplace_back(m.name, m.count);
            break;
          case obs::MetricKind::Gauge:
            kv.emplace_back(m.name,
                            static_cast<uint64_t>(m.gaugeValue));
            break;
          case obs::MetricKind::Histogram:
            break; // counters/gauges only (see StatsReply)
        }
    }
    return kv;
}

uint64_t
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
            .count());
}

/** Seconds → poll milliseconds (0 and below disable: -1). */
int
timeoutMs(double seconds)
{
    if (seconds <= 0)
        return -1;
    return std::max(1, static_cast<int>(seconds * 1000.0));
}

/** The idempotency-index key: tenant and key cannot collide across
 *  tenants ('\n' never appears in either role's typical values, and
 *  a collision would only merge two jobs of the same tenant). */
std::string
submissionIndexKey(const SubmitRequest &request)
{
    return request.tenant + '\n' + request.submissionKey;
}

QueueLimits
queueLimits(const ServerConfig &cfg)
{
    QueueLimits lim;
    lim.capacity = cfg.queueCapacity;
    lim.tenantMaxQueued = cfg.tenantMaxQueued;
    lim.tenantMaxRunning = cfg.tenantMaxRunning;
    lim.tenantWeights = cfg.tenantWeights;
    return lim;
}

} // namespace

QuestServer::QuestServer(ServerConfig config)
    : cfg(std::move(config)), queue(queueLimits(cfg))
{
    const unsigned budget = std::max(
        1u, cfg.threads == 0 ? ThreadPool::hardwareConcurrency()
                             : cfg.threads);
    pool = std::make_unique<ThreadPool>(budget - 1);

    if (!cfg.cacheDir.empty()) {
        cache::CacheConfig cc;
        cc.dir = cfg.cacheDir;
        cc.maxBytes = cfg.cacheMaxBytes;
        diskCache = std::make_unique<cache::SynthesisCache>(cc);
    }

    if (!cfg.stateDir.empty()) {
        std::filesystem::create_directories(cfg.stateDir);
        journal = std::make_unique<resilience::Journal>(
            cfg.stateDir + "/service.qrj");
        replayJournal();
    }

    const unsigned executors = std::max(1u, cfg.executors);
    executorThreads.reserve(executors);
    for (unsigned e = 0; e < executors; ++e)
        executorThreads.emplace_back([this] { executorLoop(); });
}

QuestServer::~QuestServer()
{
    stop(true);
}

void
QuestServer::replayJournal()
{
    // Submits without a terminal record were in flight when the
    // previous daemon died: re-enqueue them. Their per-job QUEST
    // checkpoint journals make the re-run replay completed block
    // syntheses byte-identically instead of recomputing.
    static auto &replayed = obs::MetricsRegistry::global().counter(
        names::kMetricServiceJobsReplayed);

    std::map<uint64_t, SubmitRequest> pending;
    std::map<uint64_t, bool> terminal;
    uint64_t maxId = 0;
    for (const resilience::JournalRecord &rec : journal->records()) {
        try {
            ByteReader r(rec.payload);
            const uint64_t id = r.u64();
            maxId = std::max(maxId, id);
            if (rec.type == kRecSubmit)
                pending[id] = SubmitRequest::decode(r);
            else if (rec.type == kRecTerminal)
                terminal[id] = true;
        } catch (const SerializeError &e) {
            warn("service journal: skipping undecodable record: ",
                 e.what());
        }
    }
    nextId = maxId + 1;

    for (auto &[id, request] : pending) {
        if (terminal.count(id))
            continue;
        auto job = std::make_shared<Job>(&serverCancel);
        job->id = id;
        job->seq = nextSeq++;
        job->request = std::move(request);
        job->resumed = true;
        job->admitted = std::chrono::steady_clock::now();
        if (job->request.deadlineSeconds > 0) {
            // The original admission time is gone with the old
            // process; the deadline re-arms from the restart.
            job->deadline = resilience::Deadline::after(
                job->request.deadlineSeconds);
        }
        jobs[job->id] = job;
        if (!job->request.submissionKey.empty())
            submissionIndex[submissionIndexKey(job->request)] = job;
        if (queue.tryPush(job) == PushOutcome::Ok) {
            replayed.increment();
            ++replayedCount;
            inform("service: replaying in-flight job ", job->id);
        } else {
            job->state = JobState::Rejected;
            job->exitCode = names::kExitResource;
            job->detail = "queue full during journal replay";
            job->completionSeq = ++completionCounter;
            ByteWriter w;
            w.u64(job->id);
            w.u8(static_cast<uint8_t>(JobState::Rejected));
            w.i32(job->exitCode);
            journal->append(kRecTerminal, w.take());
            terminalCounter(JobState::Rejected).increment();
        }
    }
    setQueueDepthGauge();
}

void
QuestServer::start()
{
    listener = std::make_unique<Listener>(cfg.socketPath);
    acceptThread = std::thread([this] { acceptLoop(); });
}

void
QuestServer::reapConnSlotsLocked()
{
    for (auto it = connSlots.begin(); it != connSlots.end();) {
        if (it->done.load()) {
            it->thread.join();
            it = connSlots.erase(it);
        } else {
            ++it;
        }
    }
}

void
QuestServer::attach(int fd)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &active =
        registry.gauge(names::kMetricServiceConnsActive);
    static auto &rejectedConns =
        registry.counter(names::kMetricServiceConnsRejected);

    std::lock_guard<std::mutex> lock(connMu);
    reapConnSlotsLocked();
    if (cfg.maxConnections > 0 &&
        connFds.size() >= cfg.maxConnections) {
        // Over the cap: tell the peer why, then hang up. The Error
        // frame carries the resource code, so quest_client exits
        // like any other shed and its retry policy backs off.
        rejectedConns.increment();
        ErrorReply err;
        err.exitCode = names::kExitResource;
        err.message = "connection limit reached (max " +
                      std::to_string(cfg.maxConnections) + ")";
        sendFrame(fd, MsgType::Error, encodePayload(err),
                  timeoutMs(cfg.ioTimeoutSeconds));
        ::close(fd);
        return;
    }
    connFds.push_back(fd);
    active.set(static_cast<int64_t>(connFds.size()));
    ConnSlot &slot = connSlots.emplace_back();
    slot.thread = std::thread([this, fd, &slot] {
        serveConnection(fd);
        slot.done.store(true);
    });
}

void
QuestServer::requestStop(bool drain)
{
    std::lock_guard<std::mutex> lock(stateMu);
    if (!stopping.exchange(true))
        drainOnStop = drain;
    stateCv.notify_all();
}

void
QuestServer::stop(bool drain)
{
    requestStop(drain);
    {
        std::lock_guard<std::mutex> lock(stateMu);
        if (stopped)
            return;
        stopped = true;
        drain = drainOnStop;
    }

    if (acceptThread.joinable())
        acceptThread.join();
    if (listener)
        listener->close();

    if (!drain) {
        // Cancel queued *and* running jobs: every job token is a
        // child of the server token, executors see the cancellation
        // at their next safe point and finalize as Cancelled.
        serverCancel.cancel();
    }
    queue.close();
    for (std::thread &t : executorThreads)
        t.join();
    executorThreads.clear();

    std::list<ConnSlot> slots;
    {
        std::lock_guard<std::mutex> lock(connMu);
        slots.splice(slots.begin(), connSlots);
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (ConnSlot &slot : slots) {
        if (slot.thread.joinable())
            slot.thread.join();
    }
}

void
QuestServer::waitStopRequested()
{
    std::unique_lock<std::mutex> lock(stateMu);
    stateCv.wait(lock, [&] { return stopping.load(); });
}

void
QuestServer::acceptLoop()
{
    while (!stopping.load()) {
        const int fd = listener->acceptConnection(50);
        if (fd < 0)
            continue; // timeout or (injected) accept failure
        if (stopping.load()) {
            ::close(fd);
            break;
        }
        attach(fd);
    }
}

void
QuestServer::serveConnection(int fd)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &connections =
        registry.counter(names::kMetricServiceConnections);
    static auto &rejectedFrames =
        registry.counter(names::kMetricServiceFramesRejected);
    static auto &recvStalls =
        registry.counter(names::kMetricServiceRecvStalls);
    static auto &reaped =
        registry.counter(names::kMetricServiceConnsReaped);
    static auto &active =
        registry.gauge(names::kMetricServiceConnsActive);
    connections.increment();

    SocketTimeouts timeouts;
    timeouts.ioMs = timeoutMs(cfg.ioTimeoutSeconds);
    timeouts.idleMs = timeoutMs(cfg.idleTimeoutSeconds);

    bool keep = true;
    while (keep) {
        RecvResult r = recvFrame(fd, cfg.maxFrameBytes, timeouts);
        if (r.status == RecvStatus::Eof ||
            r.status == RecvStatus::IoError) {
            break;
        }
        if (r.status == RecvStatus::Stalled) {
            // Slowloris: the peer started a frame and went quiet
            // past the I/O deadline. Count the drop; the frame is
            // unrecoverable, so there is nothing to reply to.
            recvStalls.increment();
            break;
        }
        if (r.status == RecvStatus::Idle) {
            // The reaper: nothing arrived within the idle deadline.
            reaped.increment();
            break;
        }
        if (r.status != RecvStatus::Ok) {
            // Malformed, oversized or version-mismatched framing:
            // reply with a taxonomy-coded error, then drop the
            // connection (resynchronizing a byte stream after a bad
            // length prefix is guesswork).
            rejectedFrames.increment();
            ErrorReply err;
            err.exitCode = names::kExitInvalidInput;
            err.message = r.error;
            sendReply(fd, MsgType::Error, encodePayload(err));
            break;
        }
        if (QUEST_FAULT_POINT(names::kFaultServiceConnDrop)) {
            // Simulated torn connection between a request and its
            // reply — the window where a client cannot know whether
            // the server acted, which the submission-key dedup
            // makes safe to blindly retry.
            break;
        }
        keep = dispatch(fd, r.frame);
    }

    std::lock_guard<std::mutex> lock(connMu);
    ::close(fd);
    connFds.erase(std::remove(connFds.begin(), connFds.end(), fd),
                  connFds.end());
    active.set(static_cast<int64_t>(connFds.size()));
}

bool
QuestServer::sendReply(int fd, MsgType type,
                       const std::vector<uint8_t> &payload)
{
    static auto &sendStalls = obs::MetricsRegistry::global().counter(
        names::kMetricServiceSendStalls);
    switch (sendFrame(fd, type, payload,
                      timeoutMs(cfg.ioTimeoutSeconds))) {
      case SendStatus::Ok:
        return true;
      case SendStatus::Stalled:
        // The peer stopped draining its socket until our send
        // buffer filled past the deadline: a counted drop,
        // symmetric with the recv-side slowloris.
        sendStalls.increment();
        return false;
      case SendStatus::Error:
        return false;
    }
    return false;
}

bool
QuestServer::dispatch(int fd, const Frame &frame)
{
    static auto &rejectedFrames =
        obs::MetricsRegistry::global().counter(
            names::kMetricServiceFramesRejected);
    try {
        switch (frame.type) {
          case MsgType::Submit: {
            const SubmitReply reply = handleSubmit(
                decodePayload<SubmitRequest>(frame.payload));
            return sendReply(fd, MsgType::SubmitReply,
                             encodePayload(reply));
          }
          case MsgType::Status: {
            const StatusRequest req =
                decodePayload<StatusRequest>(frame.payload);
            return sendReply(fd, MsgType::StatusReply,
                             encodePayload(statusOf(req.jobId)));
          }
          case MsgType::Result: {
            const ResultDispatch d = handleResult(
                decodePayload<ResultRequest>(frame.payload));
            if (d.retry) {
                return sendReply(fd, MsgType::Retry,
                                 encodePayload(d.retryHint));
            }
            return sendReply(fd, MsgType::ResultReply,
                             encodePayload(d.result));
          }
          case MsgType::Cancel: {
            const CancelRequest req =
                decodePayload<CancelRequest>(frame.payload);
            return sendReply(fd, MsgType::CancelReply,
                             encodePayload(handleCancel(req.jobId)));
          }
          case MsgType::Stats:
            return sendReply(fd, MsgType::StatsReply,
                             encodePayload(handleStats()));
          case MsgType::Shutdown: {
            const ShutdownRequest req =
                decodePayload<ShutdownRequest>(frame.payload);
            sendReply(fd, MsgType::ShutdownReply, {});
            requestStop(req.drain);
            return false;
          }
          default: {
            rejectedFrames.increment();
            ErrorReply err;
            err.exitCode = names::kExitInvalidInput;
            err.message = std::string("unexpected frame type '") +
                          msgTypeName(frame.type) + "'";
            sendReply(fd, MsgType::Error, encodePayload(err));
            return false;
          }
        }
    } catch (const SerializeError &e) {
        rejectedFrames.increment();
        ErrorReply err;
        err.exitCode = names::kExitInvalidInput;
        err.message = std::string("bad ") + msgTypeName(frame.type) +
                      " payload: " + e.what();
        sendReply(fd, MsgType::Error, encodePayload(err));
        return false;
    }
}

double
QuestServer::retryHintSeconds(const std::string &tenant) const
{
    // Deterministic: a pure function of the tenant's standing load
    // at the moment of rejection, so two identical overloads ask
    // their clients to back off identically.
    const size_t standing =
        queue.queuedOf(tenant) + queue.runningOf(tenant);
    return 0.05 * static_cast<double>(standing + 1);
}

SubmitReply
QuestServer::handleSubmit(const SubmitRequest &request)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &submitted =
        registry.counter(names::kMetricServiceJobsSubmitted);
    static auto &dedupHits =
        registry.counter(names::kMetricServiceSubmitDedupHits);
    static auto &tenantSheds =
        registry.counter(names::kMetricServiceTenantSheds);

    SubmitReply reply;
    if (stopping.load()) {
        terminalCounter(JobState::Rejected).increment();
        reply.detail = "server is shutting down";
        return reply;
    }

    if (!request.submissionKey.empty()) {
        // Idempotent resubmission: the same (tenant, key) pair maps
        // to the job it first admitted — a client that lost its
        // connection after our ack can retry blindly without
        // double-running the job.
        std::lock_guard<std::mutex> lock(stateMu);
        auto it = submissionIndex.find(submissionIndexKey(request));
        if (it != submissionIndex.end()) {
            const Job &existing = *it->second;
            dedupHits.increment();
            reply.jobId = existing.id;
            reply.accepted = true;
            reply.state = existing.state;
            reply.detail = existing.detail;
            reply.deduplicated = true;
            return reply;
        }
    }

    auto job = std::make_shared<Job>(&serverCancel);
    job->request = request;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        job->id = nextId++;
        job->seq = nextSeq++;
        job->admitted = std::chrono::steady_clock::now();
        if (request.deadlineSeconds > 0) {
            job->deadline =
                resilience::Deadline::after(request.deadlineSeconds);
        }
        jobs[job->id] = job;
        if (journal) {
            ByteWriter w;
            w.u64(job->id);
            request.encode(w);
            journal->append(kRecSubmit, w.take());
        }
        const PushOutcome pushed = queue.tryPush(job);
        if (pushed != PushOutcome::Ok) {
            // Load shedding: the bounded queue is the admission
            // valve, and the refusal maps to the `resource` code.
            // A TenantQuota refusal sheds only the noisy tenant —
            // everyone else's share of the queue stays intact.
            job->state = JobState::Rejected;
            job->exitCode = names::kExitResource;
            if (pushed == PushOutcome::TenantQuota) {
                tenantSheds.increment();
                job->detail =
                    "tenant queued quota exhausted (cap " +
                    std::to_string(cfg.tenantMaxQueued) + ")";
            } else {
                job->detail = "queue full (capacity " +
                              std::to_string(cfg.queueCapacity) +
                              ")";
            }
            job->completionSeq = ++completionCounter;
            if (journal) {
                ByteWriter w;
                w.u64(job->id);
                w.u8(static_cast<uint8_t>(JobState::Rejected));
                w.i32(job->exitCode);
                journal->append(kRecTerminal, w.take());
            }
            terminalCounter(JobState::Rejected).increment();
            stateCv.notify_all();
            reply.jobId = job->id;
            reply.state = JobState::Rejected;
            reply.detail = job->detail;
            reply.retryAfterSeconds =
                retryHintSeconds(request.tenant);
            return reply;
        }
        if (!request.submissionKey.empty())
            submissionIndex[submissionIndexKey(request)] = job;
    }
    submitted.increment();
    setQueueDepthGauge();
    reply.jobId = job->id;
    reply.accepted = true;
    reply.state = JobState::Queued;
    return reply;
}

JobStatus
QuestServer::statusOf(uint64_t jobId) const
{
    std::lock_guard<std::mutex> lock(stateMu);
    JobStatus status;
    status.jobId = jobId;
    auto it = jobs.find(jobId);
    if (it == jobs.end())
        return status;
    const Job &job = *it->second;
    status.known = true;
    status.state = job.state;
    status.exitCode = exitCodeForJobState(job.state, job.exitCode);
    status.completionSeq = job.completionSeq;
    status.detail = job.detail;
    if (job.state == JobState::Queued) {
        const int pos = queue.positionOf(jobId);
        status.queuePosition =
            pos < 0 ? 0 : static_cast<uint32_t>(pos);
    }
    return status;
}

JobStatus
QuestServer::waitTerminal(uint64_t jobId, double timeoutSeconds)
{
    {
        std::unique_lock<std::mutex> lock(stateMu);
        auto terminal = [&] {
            auto it = jobs.find(jobId);
            return it == jobs.end() ||
                   isTerminalJobState(it->second->state);
        };
        if (timeoutSeconds > 0) {
            stateCv.wait_for(
                lock, std::chrono::duration<double>(timeoutSeconds),
                terminal);
        } else {
            stateCv.wait(lock, terminal);
        }
    }
    return statusOf(jobId);
}

QuestServer::ResultDispatch
QuestServer::handleResult(const ResultRequest &request)
{
    static auto &resultRetries =
        obs::MetricsRegistry::global().counter(
            names::kMetricServiceResultRetries);

    // A waiter is served in bounded slices: wait at most
    // maxResultWaitSeconds (and never past the client's own
    // timeout), then either return the terminal result or tell the
    // client to poll again. No connection thread pins itself to a
    // long job, so slow compiles cannot exhaust the thread budget
    // the I/O deadlines protect.
    const bool bounded = cfg.maxResultWaitSeconds > 0;
    if (request.wait) {
        double budget = request.timeoutSeconds;
        if (bounded && (budget <= 0 ||
                        budget > cfg.maxResultWaitSeconds))
            budget = cfg.maxResultWaitSeconds;
        waitTerminal(request.jobId, budget);
    }

    std::lock_guard<std::mutex> lock(stateMu);
    ResultDispatch d;
    auto it = jobs.find(request.jobId);
    if (it == jobs.end()) {
        d.result.status.jobId = request.jobId;
        return d;
    }
    const Job &job = *it->second;
    JobStatus status;
    status.jobId = job.id;
    status.known = true;
    status.state = job.state;
    status.exitCode = exitCodeForJobState(job.state, job.exitCode);
    status.completionSeq = job.completionSeq;
    status.detail = job.detail;

    if (!isTerminalJobState(job.state) && request.wait && bounded &&
        (request.timeoutSeconds <= 0 ||
         request.timeoutSeconds > cfg.maxResultWaitSeconds)) {
        // Our bounded slice ran out before the job did, and the
        // client has wait budget left: hand the wait back to it.
        resultRetries.increment();
        d.retry = true;
        d.retryHint.status = status;
        d.retryHint.retryAfterSeconds = 0; // re-poll now; we pace
        return d;
    }

    if (isTerminalJobState(job.state))
        d.result = job.result; // summary + samples + metrics
    d.result.status = status;
    return d;
}

CancelReply
QuestServer::handleCancel(uint64_t jobId)
{
    CancelReply reply;
    reply.jobId = jobId;

    std::shared_ptr<Job> job;
    JobState observed = JobState::Queued;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        auto it = jobs.find(jobId);
        if (it == jobs.end())
            return reply; // Unknown
        job = it->second;
        observed = job->state;
    }

    if (isTerminalJobState(observed)) {
        reply.outcome = CancelOutcome::AlreadyDone;
        return reply;
    }
    if (observed == JobState::Queued && queue.remove(jobId)) {
        // Dequeued before it ever ran: the job never reaches an
        // executor, the pool, or a Budget poll.
        job->cancel.cancel();
        finalize(job, JobState::Cancelled, names::kExitCancelled,
                 "cancelled while queued");
        setQueueDepthGauge();
        reply.outcome = CancelOutcome::Dequeued;
        return reply;
    }
    // Running (or popped concurrently with this cancel): fire the
    // token; the pipeline stops at its next safe point and the
    // executor finalizes the job as Cancelled.
    job->cancel.cancel();
    reply.outcome = CancelOutcome::Signalled;
    return reply;
}

StatsReply
QuestServer::handleStats() const
{
    StatsReply reply;
    reply.stats = metricsSnapshot();
    return reply;
}

void
QuestServer::executorLoop()
{
    while (std::shared_ptr<Job> job = queue.pop()) {
        runJob(job);
        // Release the running slot pop() charged to the tenant —
        // runJob() finalizes on every path, so this always pairs.
        queue.jobFinished(job->request.tenant);
    }
}

void
QuestServer::runJob(const std::shared_ptr<Job> &job)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &queueMs =
        registry.histogram(names::kMetricServiceJobQueueMs);
    static auto &runMs =
        registry.histogram(names::kMetricServiceJobRunMs);
    queueMs.record(millisSince(job->admitted));
    setQueueDepthGauge();

    if (job->cancel.cancelled()) {
        finalize(job, JobState::Cancelled, names::kExitCancelled,
                 "cancelled while queued");
        return;
    }
    if (job->deadline.expired()) {
        finalize(job, JobState::Expired, names::kExitTimeout,
                 "deadline expired while queued");
        return;
    }
    {
        std::lock_guard<std::mutex> lock(stateMu);
        if (isTerminalJobState(job->state))
            return;
        job->state = JobState::Running;
    }

    const auto started = std::chrono::steady_clock::now();

    QuestConfig jc =
        cfg.base ? applyCompileOptions(*cfg.base, job->request.options)
                 : compileConfig(job->request.options);
    jc.pool = pool.get();
    if (diskCache)
        jc.sharedCache = diskCache.get();
    jc.cancel = &job->cancel;
    if (!cfg.stateDir.empty()) {
        jc.checkpointDir =
            cfg.stateDir + "/jobs/" + std::to_string(job->id);
        jc.resume = job->resumed;
    }
    // A service job's budget is a contract, not a hint: run under
    // Fail so a fired deadline surfaces as Expired and a fired
    // cancel token as Cancelled, instead of a silently degraded
    // ensemble a tenant cannot tell from a full compile.
    jc.deadlinePolicy = DeadlinePolicy::Fail;
    if (!job->deadline.isNever()) {
        jc.runTimeoutSeconds =
            std::max(job->deadline.remainingSeconds(), 1e-9);
    }

    static auto &executorCrashes =
        obs::MetricsRegistry::global().counter(
            names::kMetricServiceExecutorCrashes);

    try {
        if (QUEST_FAULT_POINT(names::kFaultServiceExecutorCrash)) {
            // Simulated executor bug: a foreign (non-QuestError,
            // non-std) exception escaping the pipeline. The
            // catch-all below must contain it to this one job.
            struct InjectedExecutorCrash
            {};
            throw InjectedExecutorCrash{};
        }
        Circuit circuit;
        try {
            circuit = parseQasm(job->request.qasm);
        } catch (const QasmError &e) {
            throw resilience::QuestError(
                resilience::ErrorCategory::InvalidInput,
                std::string("QASM parse error: ") + e.what());
        }
        QuestPipeline pipeline(jc);
        const QuestResult result = pipeline.run(circuit);

        // The executor is the only writer of job->result until
        // finalize() publishes the terminal state under stateMu.
        job->result.qubits =
            static_cast<uint32_t>(result.original.numQubits());
        job->result.originalCnots = result.originalCnots;
        job->result.blocks = result.blocks.size();
        job->result.okBlocks = result.okBlocks();
        job->result.threshold = result.threshold;
        job->result.samples.clear();
        for (const ApproxSample &s : result.samples) {
            SampleResult sample;
            sample.qasm = toQasm(s.circuit);
            sample.cnotCount = s.cnotCount;
            sample.distanceBound = s.distanceBound;
            job->result.samples.push_back(std::move(sample));
        }
        job->result.metrics = metricsSnapshot();
        runMs.record(millisSince(started));
        finalize(job, JobState::Done, 0, "");
    } catch (const resilience::QuestError &e) {
        runMs.record(millisSince(started));
        using resilience::ErrorCategory;
        switch (e.category()) {
          case ErrorCategory::Timeout:
            finalize(job, JobState::Expired, names::kExitTimeout,
                     e.describe());
            break;
          case ErrorCategory::Cancelled:
            finalize(job, JobState::Cancelled, names::kExitCancelled,
                     e.describe());
            break;
          default:
            finalize(job, JobState::Failed, e.exitCode(),
                     e.describe());
            break;
        }
    } catch (const std::exception &e) {
        runMs.record(millisSince(started));
        executorCrashes.increment();
        finalize(job, JobState::Failed, names::kExitInternal,
                 e.what());
    } catch (...) {
        // The supervision backstop: *any* exception an executor
        // lets escape — even a foreign type carrying no what() —
        // finalizes its one job as Internal and leaves the daemon
        // serving. An executor thread must never die.
        QUEST_INTENTIONAL_SWALLOW("the exception is converted into "
                                  "the job's terminal Failed record; "
                                  "rethrowing would kill the executor "
                                  "thread");
        runMs.record(millisSince(started));
        executorCrashes.increment();
        finalize(job, JobState::Failed, names::kExitInternal,
                 "executor crashed: non-standard exception escaped "
                 "the pipeline");
    }
}

bool
QuestServer::finalize(const std::shared_ptr<Job> &job, JobState state,
                      int exitCode, const std::string &detail)
{
    std::lock_guard<std::mutex> lock(stateMu);
    if (isTerminalJobState(job->state))
        return false;
    job->state = state;
    job->exitCode = exitCode;
    job->detail = detail;
    job->completionSeq = ++completionCounter;
    if (journal) {
        ByteWriter w;
        w.u64(job->id);
        w.u8(static_cast<uint8_t>(state));
        w.i32(exitCode);
        journal->append(kRecTerminal, w.take());
    }
    terminalCounter(state).increment();
    stateCv.notify_all();
    return true;
}

void
QuestServer::setQueueDepthGauge()
{
    static auto &depth = obs::MetricsRegistry::global().gauge(
        names::kMetricServiceQueueDepth);
    depth.set(static_cast<int64_t>(queue.depth()));
}

} // namespace quest::service
