#include "service/server.hh"

#include <algorithm>
#include <filesystem>

#include <sys/socket.h>
#include <unistd.h>

#include "cache/synthesis_cache.hh"
#include "ir/qasm.hh"
#include "obs/metrics.hh"
#include "quest/pipeline.hh"
#include "resilience/error.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace quest::service {

namespace {

/** Service journal record types (payloads are QSV1 message bytes). */
constexpr uint32_t kRecSubmit = 1;   //!< u64 jobId + SubmitRequest
constexpr uint32_t kRecTerminal = 2; //!< u64 jobId + u8 state + i32 code

obs::Counter &
terminalCounter(JobState state)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &done = registry.counter(names::kMetricServiceJobsDone);
    static auto &failed =
        registry.counter(names::kMetricServiceJobsFailed);
    static auto &cancelled =
        registry.counter(names::kMetricServiceJobsCancelled);
    static auto &rejected =
        registry.counter(names::kMetricServiceJobsRejected);
    static auto &expired =
        registry.counter(names::kMetricServiceJobsExpired);
    switch (state) {
      case JobState::Done:
        return done;
      case JobState::Failed:
        return failed;
      case JobState::Cancelled:
        return cancelled;
      case JobState::Expired:
        return expired;
      case JobState::Rejected:
      default:
        return rejected;
    }
}

/** The registry's counters and gauges as (name, value) rows. */
std::vector<std::pair<std::string, uint64_t>>
metricsSnapshot()
{
    std::vector<std::pair<std::string, uint64_t>> kv;
    for (const obs::MetricSnapshot &m :
         obs::MetricsRegistry::global().snapshot()) {
        switch (m.kind) {
          case obs::MetricKind::Counter:
            kv.emplace_back(m.name, m.count);
            break;
          case obs::MetricKind::Gauge:
            kv.emplace_back(m.name,
                            static_cast<uint64_t>(m.gaugeValue));
            break;
          case obs::MetricKind::Histogram:
            break; // counters/gauges only (see StatsReply)
        }
    }
    return kv;
}

uint64_t
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
            .count());
}

} // namespace

QuestServer::QuestServer(ServerConfig config)
    : cfg(std::move(config)), queue(cfg.queueCapacity)
{
    const unsigned budget = std::max(
        1u, cfg.threads == 0 ? ThreadPool::hardwareConcurrency()
                             : cfg.threads);
    pool = std::make_unique<ThreadPool>(budget - 1);

    if (!cfg.cacheDir.empty()) {
        cache::CacheConfig cc;
        cc.dir = cfg.cacheDir;
        cc.maxBytes = cfg.cacheMaxBytes;
        diskCache = std::make_unique<cache::SynthesisCache>(cc);
    }

    if (!cfg.stateDir.empty()) {
        std::filesystem::create_directories(cfg.stateDir);
        journal = std::make_unique<resilience::Journal>(
            cfg.stateDir + "/service.qrj");
        replayJournal();
    }

    const unsigned executors = std::max(1u, cfg.executors);
    executorThreads.reserve(executors);
    for (unsigned e = 0; e < executors; ++e)
        executorThreads.emplace_back([this] { executorLoop(); });
}

QuestServer::~QuestServer()
{
    stop(true);
}

void
QuestServer::replayJournal()
{
    // Submits without a terminal record were in flight when the
    // previous daemon died: re-enqueue them. Their per-job QUEST
    // checkpoint journals make the re-run replay completed block
    // syntheses byte-identically instead of recomputing.
    static auto &replayed = obs::MetricsRegistry::global().counter(
        names::kMetricServiceJobsReplayed);

    std::map<uint64_t, SubmitRequest> pending;
    std::map<uint64_t, bool> terminal;
    uint64_t maxId = 0;
    for (const resilience::JournalRecord &rec : journal->records()) {
        try {
            ByteReader r(rec.payload);
            const uint64_t id = r.u64();
            maxId = std::max(maxId, id);
            if (rec.type == kRecSubmit)
                pending[id] = SubmitRequest::decode(r);
            else if (rec.type == kRecTerminal)
                terminal[id] = true;
        } catch (const SerializeError &e) {
            warn("service journal: skipping undecodable record: ",
                 e.what());
        }
    }
    nextId = maxId + 1;

    for (auto &[id, request] : pending) {
        if (terminal.count(id))
            continue;
        auto job = std::make_shared<Job>(&serverCancel);
        job->id = id;
        job->seq = nextSeq++;
        job->request = std::move(request);
        job->resumed = true;
        job->admitted = std::chrono::steady_clock::now();
        if (job->request.deadlineSeconds > 0) {
            // The original admission time is gone with the old
            // process; the deadline re-arms from the restart.
            job->deadline = resilience::Deadline::after(
                job->request.deadlineSeconds);
        }
        jobs[job->id] = job;
        if (queue.tryPush(job)) {
            replayed.increment();
            ++replayedCount;
            inform("service: replaying in-flight job ", job->id);
        } else {
            job->state = JobState::Rejected;
            job->exitCode = names::kExitResource;
            job->detail = "queue full during journal replay";
            job->completionSeq = ++completionCounter;
            ByteWriter w;
            w.u64(job->id);
            w.u8(static_cast<uint8_t>(JobState::Rejected));
            w.i32(job->exitCode);
            journal->append(kRecTerminal, w.take());
            terminalCounter(JobState::Rejected).increment();
        }
    }
    setQueueDepthGauge();
}

void
QuestServer::start()
{
    listener = std::make_unique<Listener>(cfg.socketPath);
    acceptThread = std::thread([this] { acceptLoop(); });
}

void
QuestServer::attach(int fd)
{
    std::lock_guard<std::mutex> lock(connMu);
    connFds.push_back(fd);
    connThreads.emplace_back([this, fd] { serveConnection(fd); });
}

void
QuestServer::requestStop(bool drain)
{
    std::lock_guard<std::mutex> lock(stateMu);
    if (!stopping.exchange(true))
        drainOnStop = drain;
    stateCv.notify_all();
}

void
QuestServer::stop(bool drain)
{
    requestStop(drain);
    {
        std::lock_guard<std::mutex> lock(stateMu);
        if (stopped)
            return;
        stopped = true;
        drain = drainOnStop;
    }

    if (acceptThread.joinable())
        acceptThread.join();
    if (listener)
        listener->close();

    if (!drain) {
        // Cancel queued *and* running jobs: every job token is a
        // child of the server token, executors see the cancellation
        // at their next safe point and finalize as Cancelled.
        serverCancel.cancel();
    }
    queue.close();
    for (std::thread &t : executorThreads)
        t.join();
    executorThreads.clear();

    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMu);
        threads.swap(connThreads);
        for (int fd : connFds)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : threads)
        t.join();
}

void
QuestServer::waitStopRequested()
{
    std::unique_lock<std::mutex> lock(stateMu);
    stateCv.wait(lock, [&] { return stopping.load(); });
}

void
QuestServer::acceptLoop()
{
    while (!stopping.load()) {
        const int fd = listener->acceptConnection(50);
        if (fd < 0)
            continue; // timeout or (injected) accept failure
        if (stopping.load()) {
            ::close(fd);
            break;
        }
        attach(fd);
    }
}

void
QuestServer::serveConnection(int fd)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &connections =
        registry.counter(names::kMetricServiceConnections);
    static auto &rejectedFrames =
        registry.counter(names::kMetricServiceFramesRejected);
    connections.increment();

    bool keep = true;
    while (keep) {
        RecvResult r = recvFrame(fd, cfg.maxFrameBytes);
        if (r.status == RecvStatus::Eof ||
            r.status == RecvStatus::IoError) {
            break;
        }
        if (r.status != RecvStatus::Ok) {
            // Malformed, oversized or version-mismatched framing:
            // reply with a taxonomy-coded error, then drop the
            // connection (resynchronizing a byte stream after a bad
            // length prefix is guesswork).
            rejectedFrames.increment();
            ErrorReply err;
            err.exitCode = names::kExitInvalidInput;
            err.message = r.error;
            sendFrame(fd, MsgType::Error, encodePayload(err));
            break;
        }
        keep = dispatch(fd, r.frame);
    }

    std::lock_guard<std::mutex> lock(connMu);
    ::close(fd);
    connFds.erase(std::remove(connFds.begin(), connFds.end(), fd),
                  connFds.end());
}

bool
QuestServer::dispatch(int fd, const Frame &frame)
{
    static auto &rejectedFrames =
        obs::MetricsRegistry::global().counter(
            names::kMetricServiceFramesRejected);
    try {
        switch (frame.type) {
          case MsgType::Submit: {
            const SubmitReply reply = handleSubmit(
                decodePayload<SubmitRequest>(frame.payload));
            return sendFrame(fd, MsgType::SubmitReply,
                             encodePayload(reply));
          }
          case MsgType::Status: {
            const StatusRequest req =
                decodePayload<StatusRequest>(frame.payload);
            return sendFrame(fd, MsgType::StatusReply,
                             encodePayload(statusOf(req.jobId)));
          }
          case MsgType::Result: {
            const ResultReply reply = handleResult(
                decodePayload<ResultRequest>(frame.payload));
            return sendFrame(fd, MsgType::ResultReply,
                             encodePayload(reply));
          }
          case MsgType::Cancel: {
            const CancelRequest req =
                decodePayload<CancelRequest>(frame.payload);
            return sendFrame(fd, MsgType::CancelReply,
                             encodePayload(handleCancel(req.jobId)));
          }
          case MsgType::Stats:
            return sendFrame(fd, MsgType::StatsReply,
                             encodePayload(handleStats()));
          case MsgType::Shutdown: {
            const ShutdownRequest req =
                decodePayload<ShutdownRequest>(frame.payload);
            sendFrame(fd, MsgType::ShutdownReply, {});
            requestStop(req.drain);
            return false;
          }
          default: {
            rejectedFrames.increment();
            ErrorReply err;
            err.exitCode = names::kExitInvalidInput;
            err.message = std::string("unexpected frame type '") +
                          msgTypeName(frame.type) + "'";
            sendFrame(fd, MsgType::Error, encodePayload(err));
            return false;
          }
        }
    } catch (const SerializeError &e) {
        rejectedFrames.increment();
        ErrorReply err;
        err.exitCode = names::kExitInvalidInput;
        err.message = std::string("bad ") + msgTypeName(frame.type) +
                      " payload: " + e.what();
        sendFrame(fd, MsgType::Error, encodePayload(err));
        return false;
    }
}

SubmitReply
QuestServer::handleSubmit(const SubmitRequest &request)
{
    static auto &submitted = obs::MetricsRegistry::global().counter(
        names::kMetricServiceJobsSubmitted);

    SubmitReply reply;
    if (stopping.load()) {
        terminalCounter(JobState::Rejected).increment();
        reply.detail = "server is shutting down";
        return reply;
    }

    auto job = std::make_shared<Job>(&serverCancel);
    job->request = request;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        job->id = nextId++;
        job->seq = nextSeq++;
        job->admitted = std::chrono::steady_clock::now();
        if (request.deadlineSeconds > 0) {
            job->deadline =
                resilience::Deadline::after(request.deadlineSeconds);
        }
        jobs[job->id] = job;
        if (journal) {
            ByteWriter w;
            w.u64(job->id);
            request.encode(w);
            journal->append(kRecSubmit, w.take());
        }
        if (!queue.tryPush(job)) {
            // Load shedding: the bounded queue is the admission
            // valve, and the refusal maps to the `resource` code.
            job->state = JobState::Rejected;
            job->exitCode = names::kExitResource;
            job->detail = "queue full (capacity " +
                          std::to_string(cfg.queueCapacity) + ")";
            job->completionSeq = ++completionCounter;
            if (journal) {
                ByteWriter w;
                w.u64(job->id);
                w.u8(static_cast<uint8_t>(JobState::Rejected));
                w.i32(job->exitCode);
                journal->append(kRecTerminal, w.take());
            }
            terminalCounter(JobState::Rejected).increment();
            stateCv.notify_all();
            reply.jobId = job->id;
            reply.state = JobState::Rejected;
            reply.detail = job->detail;
            return reply;
        }
    }
    submitted.increment();
    setQueueDepthGauge();
    reply.jobId = job->id;
    reply.accepted = true;
    reply.state = JobState::Queued;
    return reply;
}

JobStatus
QuestServer::statusOf(uint64_t jobId) const
{
    std::lock_guard<std::mutex> lock(stateMu);
    JobStatus status;
    status.jobId = jobId;
    auto it = jobs.find(jobId);
    if (it == jobs.end())
        return status;
    const Job &job = *it->second;
    status.known = true;
    status.state = job.state;
    status.exitCode = exitCodeForJobState(job.state, job.exitCode);
    status.completionSeq = job.completionSeq;
    status.detail = job.detail;
    if (job.state == JobState::Queued) {
        const int pos = queue.positionOf(jobId);
        status.queuePosition =
            pos < 0 ? 0 : static_cast<uint32_t>(pos);
    }
    return status;
}

JobStatus
QuestServer::waitTerminal(uint64_t jobId, double timeoutSeconds)
{
    {
        std::unique_lock<std::mutex> lock(stateMu);
        auto terminal = [&] {
            auto it = jobs.find(jobId);
            return it == jobs.end() ||
                   isTerminalJobState(it->second->state);
        };
        if (timeoutSeconds > 0) {
            stateCv.wait_for(
                lock, std::chrono::duration<double>(timeoutSeconds),
                terminal);
        } else {
            stateCv.wait(lock, terminal);
        }
    }
    return statusOf(jobId);
}

ResultReply
QuestServer::handleResult(const ResultRequest &request)
{
    if (request.wait)
        waitTerminal(request.jobId, request.timeoutSeconds);

    std::lock_guard<std::mutex> lock(stateMu);
    auto it = jobs.find(request.jobId);
    if (it == jobs.end()) {
        ResultReply reply;
        reply.status.jobId = request.jobId;
        return reply;
    }
    const Job &job = *it->second;
    ResultReply reply;
    if (isTerminalJobState(job.state))
        reply = job.result; // summary + samples + metrics snapshot
    reply.status.jobId = job.id;
    reply.status.known = true;
    reply.status.state = job.state;
    reply.status.exitCode =
        exitCodeForJobState(job.state, job.exitCode);
    reply.status.completionSeq = job.completionSeq;
    reply.status.detail = job.detail;
    return reply;
}

CancelReply
QuestServer::handleCancel(uint64_t jobId)
{
    CancelReply reply;
    reply.jobId = jobId;

    std::shared_ptr<Job> job;
    JobState observed = JobState::Queued;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        auto it = jobs.find(jobId);
        if (it == jobs.end())
            return reply; // Unknown
        job = it->second;
        observed = job->state;
    }

    if (isTerminalJobState(observed)) {
        reply.outcome = CancelOutcome::AlreadyDone;
        return reply;
    }
    if (observed == JobState::Queued && queue.remove(jobId)) {
        // Dequeued before it ever ran: the job never reaches an
        // executor, the pool, or a Budget poll.
        job->cancel.cancel();
        finalize(job, JobState::Cancelled, names::kExitCancelled,
                 "cancelled while queued");
        setQueueDepthGauge();
        reply.outcome = CancelOutcome::Dequeued;
        return reply;
    }
    // Running (or popped concurrently with this cancel): fire the
    // token; the pipeline stops at its next safe point and the
    // executor finalizes the job as Cancelled.
    job->cancel.cancel();
    reply.outcome = CancelOutcome::Signalled;
    return reply;
}

StatsReply
QuestServer::handleStats() const
{
    StatsReply reply;
    reply.stats = metricsSnapshot();
    return reply;
}

void
QuestServer::executorLoop()
{
    while (std::shared_ptr<Job> job = queue.pop())
        runJob(job);
}

void
QuestServer::runJob(const std::shared_ptr<Job> &job)
{
    auto &registry = obs::MetricsRegistry::global();
    static auto &queueMs =
        registry.histogram(names::kMetricServiceJobQueueMs);
    static auto &runMs =
        registry.histogram(names::kMetricServiceJobRunMs);
    queueMs.record(millisSince(job->admitted));
    setQueueDepthGauge();

    if (job->cancel.cancelled()) {
        finalize(job, JobState::Cancelled, names::kExitCancelled,
                 "cancelled while queued");
        return;
    }
    if (job->deadline.expired()) {
        finalize(job, JobState::Expired, names::kExitTimeout,
                 "deadline expired while queued");
        return;
    }
    {
        std::lock_guard<std::mutex> lock(stateMu);
        if (isTerminalJobState(job->state))
            return;
        job->state = JobState::Running;
    }

    const auto started = std::chrono::steady_clock::now();

    QuestConfig jc =
        cfg.base ? applyCompileOptions(*cfg.base, job->request.options)
                 : compileConfig(job->request.options);
    jc.pool = pool.get();
    if (diskCache)
        jc.sharedCache = diskCache.get();
    jc.cancel = &job->cancel;
    if (!cfg.stateDir.empty()) {
        jc.checkpointDir =
            cfg.stateDir + "/jobs/" + std::to_string(job->id);
        jc.resume = job->resumed;
    }
    // A service job's budget is a contract, not a hint: run under
    // Fail so a fired deadline surfaces as Expired and a fired
    // cancel token as Cancelled, instead of a silently degraded
    // ensemble a tenant cannot tell from a full compile.
    jc.deadlinePolicy = DeadlinePolicy::Fail;
    if (!job->deadline.isNever()) {
        jc.runTimeoutSeconds =
            std::max(job->deadline.remainingSeconds(), 1e-9);
    }

    try {
        Circuit circuit;
        try {
            circuit = parseQasm(job->request.qasm);
        } catch (const QasmError &e) {
            throw resilience::QuestError(
                resilience::ErrorCategory::InvalidInput,
                std::string("QASM parse error: ") + e.what());
        }
        QuestPipeline pipeline(jc);
        const QuestResult result = pipeline.run(circuit);

        // The executor is the only writer of job->result until
        // finalize() publishes the terminal state under stateMu.
        job->result.qubits =
            static_cast<uint32_t>(result.original.numQubits());
        job->result.originalCnots = result.originalCnots;
        job->result.blocks = result.blocks.size();
        job->result.okBlocks = result.okBlocks();
        job->result.threshold = result.threshold;
        job->result.samples.clear();
        for (const ApproxSample &s : result.samples) {
            SampleResult sample;
            sample.qasm = toQasm(s.circuit);
            sample.cnotCount = s.cnotCount;
            sample.distanceBound = s.distanceBound;
            job->result.samples.push_back(std::move(sample));
        }
        job->result.metrics = metricsSnapshot();
        runMs.record(millisSince(started));
        finalize(job, JobState::Done, 0, "");
    } catch (const resilience::QuestError &e) {
        runMs.record(millisSince(started));
        using resilience::ErrorCategory;
        switch (e.category()) {
          case ErrorCategory::Timeout:
            finalize(job, JobState::Expired, names::kExitTimeout,
                     e.describe());
            break;
          case ErrorCategory::Cancelled:
            finalize(job, JobState::Cancelled, names::kExitCancelled,
                     e.describe());
            break;
          default:
            finalize(job, JobState::Failed, e.exitCode(),
                     e.describe());
            break;
        }
    } catch (const std::exception &e) {
        runMs.record(millisSince(started));
        finalize(job, JobState::Failed, names::kExitInternal,
                 e.what());
    }
}

bool
QuestServer::finalize(const std::shared_ptr<Job> &job, JobState state,
                      int exitCode, const std::string &detail)
{
    std::lock_guard<std::mutex> lock(stateMu);
    if (isTerminalJobState(job->state))
        return false;
    job->state = state;
    job->exitCode = exitCode;
    job->detail = detail;
    job->completionSeq = ++completionCounter;
    if (journal) {
        ByteWriter w;
        w.u64(job->id);
        w.u8(static_cast<uint8_t>(state));
        w.i32(exitCode);
        journal->append(kRecTerminal, w.take());
    }
    terminalCounter(state).increment();
    stateCv.notify_all();
    return true;
}

void
QuestServer::setQueueDepthGauge()
{
    static auto &depth = obs::MetricsRegistry::global().gauge(
        names::kMetricServiceQueueDepth);
    depth.set(static_cast<int64_t>(queue.depth()));
}

} // namespace quest::service
