/**
 * @file
 * Job-level vocabulary of the compile service: the per-job compile
 * options carried over the wire, the job lifecycle states, and the
 * mapping from terminal states to the PR-5 exit-code taxonomy.
 *
 * The option set is deliberately the same knob set quest_compile
 * exposes, and compileConfig() is the *shared* construction of the
 * full QuestConfig from those knobs — quest_compile builds its config
 * through the same function, which is what makes a service job's
 * samples byte-identical to a quest_compile run on the same input
 * (the service only adds the shared pool/cache/cancel plumbing, none
 * of which is result-affecting).
 */

#ifndef QUEST_SERVICE_JOB_HH
#define QUEST_SERVICE_JOB_HH

#include <cstdint>

#include "quest/config.hh"

namespace quest::service {

/**
 * Lifecycle of one submitted job. Queued and Running are transient;
 * everything else is terminal. Rejected never enters the queue
 * (admission control refused it); Expired means the job's own
 * deadline fired before or during its run.
 */
enum class JobState : uint8_t {
    Queued = 0,
    Running = 1,
    Done = 2,
    Failed = 3,
    Cancelled = 4,
    Rejected = 5,
    Expired = 6,
};

/** Stable lower-case name ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** True for the states a job can never leave. */
bool isTerminalJobState(JobState state);

/**
 * The exit code a quest_compile run ending in this state would have
 * returned (docs/REGISTRY.md "Job states"): Done 0, Cancelled 13,
 * Rejected 15 (resource: the queue was the exhausted resource),
 * Expired 12, Failed @p failCode (the job's own QuestError code),
 * and -1 for non-terminal states.
 */
int exitCodeForJobState(JobState state, int failCode);

/**
 * The per-job knobs a client may set, mirroring quest_compile's
 * CLI surface. Defaults equal quest_compile's defaults.
 */
struct CompileOptions
{
    double threshold = 0.3; //!< per-block threshold
    int maxSamples = 16;    //!< ensemble size cap
    int maxLayers = 16;     //!< synthesis layer cap
    int blockSize = 4;      //!< partition width
    uint64_t seed = 99;     //!< master seed

    /** Certification mode (quest/mode.hh): Full measures every
     *  sample's exact distance (<= 14 qubits); BlockBound is the
     *  `--large` block-only mode for wide circuits. */
    SelectionMode selectionMode = SelectionMode::Full;
};

/**
 * The front-end base config (quest_compile's tuned synthesis budget)
 * before any per-job option is applied.
 */
QuestConfig baseCompileConfig();

/** Apply @p options onto @p config (returns the modified copy). */
QuestConfig applyCompileOptions(QuestConfig config,
                                const CompileOptions &options);

/** baseCompileConfig() with @p options applied — exactly the config
 *  quest_compile builds for the same flag values. */
QuestConfig compileConfig(const CompileOptions &options);

} // namespace quest::service

#endif // QUEST_SERVICE_JOB_HH
