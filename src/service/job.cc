#include "service/job.hh"

#include "util/names.hh"

namespace quest::service {

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Cancelled:
        return "cancelled";
      case JobState::Rejected:
        return "rejected";
      case JobState::Expired:
        return "expired";
    }
    return "unknown";
}

bool
isTerminalJobState(JobState state)
{
    return state != JobState::Queued && state != JobState::Running;
}

int
exitCodeForJobState(JobState state, int failCode)
{
    switch (state) {
      case JobState::Queued:
      case JobState::Running:
        return -1;
      case JobState::Done:
        return 0;
      case JobState::Failed:
        return failCode;
      case JobState::Cancelled:
        return names::kExitCancelled;
      case JobState::Rejected:
        return names::kExitResource;
      case JobState::Expired:
        return names::kExitTimeout;
    }
    return names::kExitInternal;
}

QuestConfig
baseCompileConfig()
{
    QuestConfig config;
    config.synth.beamWidth = 1;
    config.synth.inst.multistarts = 2;
    config.synth.inst.lbfgs.maxIterations = 300;
    config.synth.stallLevels = 8;
    return config;
}

QuestConfig
applyCompileOptions(QuestConfig config, const CompileOptions &options)
{
    config.thresholdPerBlock = options.threshold;
    config.maxSamples = options.maxSamples;
    config.synth.maxLayers = options.maxLayers;
    config.maxBlockSize = options.blockSize;
    config.seed = options.seed;
    config.selectionMode = options.selectionMode;
    return config;
}

QuestConfig
compileConfig(const CompileOptions &options)
{
    return applyCompileOptions(baseCompileConfig(), options);
}

} // namespace quest::service
