#include "service/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include <unistd.h>

#include "obs/metrics.hh"
#include "resilience/error.hh"
#include "service/socket.hh"
#include "util/names.hh"
#include "util/rng.hh"

namespace quest::service {

namespace {

using resilience::ErrorCategory;
using resilience::QuestError;

/** The taxonomy code an Error frame carries, back to its category
 *  (inverse of the server's exitCodeFor mapping). */
ErrorCategory
categoryForExitCode(int32_t code)
{
    switch (code) {
      case names::kExitInvalidInput:
        return ErrorCategory::InvalidInput;
      case names::kExitIo:
        return ErrorCategory::Io;
      case names::kExitTimeout:
        return ErrorCategory::Timeout;
      case names::kExitCancelled:
        return ErrorCategory::Cancelled;
      case names::kExitDiverged:
        return ErrorCategory::Diverged;
      case names::kExitResource:
        return ErrorCategory::Resource;
      default:
        return ErrorCategory::Internal;
    }
}

void
sleepSeconds(double seconds)
{
    if (seconds <= 0)
        return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
}

} // namespace

std::vector<double>
backoffSchedule(const RetryPolicy &policy, size_t attempts)
{
    // Deterministic by construction: the k-th delay depends only on
    // (base, max, seed, k). Jitter de-synchronizes a fleet of
    // clients retrying the same outage without sacrificing
    // reproducibility — the test pins same-seed → same-schedule.
    std::vector<double> delays;
    delays.reserve(attempts);
    Rng rng(policy.seed, 1);
    double step = std::max(policy.baseDelaySeconds, 0.0);
    for (size_t k = 0; k < attempts; ++k) {
        const double capped =
            policy.maxDelaySeconds > 0
                ? std::min(step, policy.maxDelaySeconds)
                : step;
        delays.push_back(capped * (0.5 + 0.5 * rng.uniform()));
        step *= 2;
    }
    return delays;
}

QuestClient
QuestClient::connect(const std::string &path, double timeoutSeconds,
                     RetryPolicy policy)
{
    QuestClient client(connectTo(path, timeoutSeconds));
    client.path = path;
    client.connectTimeout = timeoutSeconds;
    client.policy = policy;
    return client;
}

QuestClient
QuestClient::fromFd(int fd)
{
    return QuestClient(fd);
}

QuestClient::~QuestClient()
{
    if (sock >= 0)
        ::close(sock);
}

QuestClient::QuestClient(QuestClient &&other) noexcept
    : sock(other.sock), path(std::move(other.path)),
      connectTimeout(other.connectTimeout), policy(other.policy)
{
    other.sock = -1;
}

QuestClient &
QuestClient::operator=(QuestClient &&other) noexcept
{
    if (this != &other) {
        if (sock >= 0)
            ::close(sock);
        sock = other.sock;
        path = std::move(other.path);
        connectTimeout = other.connectTimeout;
        policy = other.policy;
        other.sock = -1;
    }
    return *this;
}

bool
QuestClient::attemptRoundTrip(MsgType type,
                              const std::vector<uint8_t> &payload,
                              Frame &out, std::string &detail)
{
    if (sock < 0) {
        detail = "not connected";
        return false;
    }
    if (sendFrame(sock, type, payload) != SendStatus::Ok) {
        detail = std::string("cannot send ") + msgTypeName(type) +
                 " frame";
        ::close(sock);
        sock = -1;
        return false;
    }
    RecvResult r = recvFrame(sock);
    switch (r.status) {
      case RecvStatus::Ok:
        out = std::move(r.frame);
        return true;
      case RecvStatus::Malformed:
      case RecvStatus::VersionMismatch:
      case RecvStatus::Oversized:
        // The server is speaking, just not our dialect: retrying
        // the same bytes cannot help, so fail loudly instead.
        ::close(sock);
        sock = -1;
        throw QuestError(ErrorCategory::InvalidInput, r.error);
      case RecvStatus::Eof:
        detail = "server closed the connection";
        break;
      default: // IoError (and the unreachable deadline statuses)
        detail = r.error;
        break;
    }
    ::close(sock);
    sock = -1;
    return false;
}

Frame
QuestClient::roundTrip(MsgType type,
                       const std::vector<uint8_t> &payload,
                       MsgType expect, MsgType alsoExpect,
                       bool idempotent)
{
    static auto &clientRetries =
        obs::MetricsRegistry::global().counter(
            names::kMetricServiceClientRetries);

    const bool canHeal =
        idempotent && !path.empty() && policy.retries > 0;
    const std::vector<double> delays =
        canHeal ? backoffSchedule(
                      policy, static_cast<size_t>(policy.retries))
                : std::vector<double>{};

    Frame reply;
    std::string detail;
    for (size_t attempt = 0;; ++attempt) {
        if (attemptRoundTrip(type, payload, reply, detail))
            break;
        if (!canHeal || attempt >= delays.size()) {
            throw QuestError(ErrorCategory::Io,
                             std::string("transport failure on ") +
                                 msgTypeName(type) + ": " + detail);
        }
        // Self-healing: back off, reconnect, resend. The server's
        // submission-key dedup (for submits) and idempotent reads
        // (for everything else) make the blind resend safe.
        clientRetries.increment();
        sleepSeconds(delays[attempt]);
        try {
            sock = connectTo(path, connectTimeout);
        } catch (const QuestError &) {
            if (attempt + 1 >= delays.size())
                throw;
            // The daemon may still be coming back; spend another
            // attempt on it.
        }
    }

    if (reply.type == MsgType::Error) {
        const ErrorReply err =
            decodePayload<ErrorReply>(reply.payload);
        throw QuestError(categoryForExitCode(err.exitCode),
                         err.message);
    }
    if (reply.type != expect && reply.type != alsoExpect) {
        throw QuestError(ErrorCategory::InvalidInput,
                         std::string("expected a ") +
                             msgTypeName(expect) + " frame, got " +
                             msgTypeName(reply.type));
    }
    return reply;
}

SubmitReply
QuestClient::submit(const SubmitRequest &request)
{
    const Frame reply =
        roundTrip(MsgType::Submit, encodePayload(request),
                  MsgType::SubmitReply, MsgType::SubmitReply,
                  /*idempotent=*/!request.submissionKey.empty());
    return decodePayload<SubmitReply>(reply.payload);
}

JobStatus
QuestClient::status(uint64_t jobId)
{
    StatusRequest request;
    request.jobId = jobId;
    const Frame reply = roundTrip(
        MsgType::Status, encodePayload(request), MsgType::StatusReply,
        MsgType::StatusReply, /*idempotent=*/true);
    return decodePayload<JobStatus>(reply.payload);
}

ResultReply
QuestClient::result(uint64_t jobId, bool wait, double timeoutSeconds)
{
    using Clock = std::chrono::steady_clock;
    const bool boundedWait = wait && timeoutSeconds > 0;
    const Clock::time_point giveUp =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               std::max(timeoutSeconds, 0.0)));
    for (;;) {
        ResultRequest request;
        request.jobId = jobId;
        request.wait = wait;
        request.timeoutSeconds = timeoutSeconds;
        if (boundedWait) {
            const double left =
                std::chrono::duration<double>(giveUp - Clock::now())
                    .count();
            // Never send 0 (= unbounded) once a bound was asked
            // for: a nearly expired wait becomes a tiny one.
            request.timeoutSeconds = std::max(left, 1e-3);
        }
        const Frame reply = roundTrip(
            MsgType::Result, encodePayload(request),
            MsgType::ResultReply, MsgType::Retry,
            /*idempotent=*/true);
        if (reply.type == MsgType::ResultReply)
            return decodePayload<ResultReply>(reply.payload);

        // A Retry frame: the server's bounded wait ran out first.
        const RetryReply retry =
            decodePayload<RetryReply>(reply.payload);
        if (boundedWait && Clock::now() >= giveUp) {
            // Our own budget ran out too: surface the non-terminal
            // status the same way the seed's unbounded server wait
            // would have.
            ResultReply out;
            out.status = retry.status;
            return out;
        }
        sleepSeconds(retry.retryAfterSeconds);
    }
}

CancelReply
QuestClient::cancelJob(uint64_t jobId)
{
    CancelRequest request;
    request.jobId = jobId;
    const Frame reply = roundTrip(
        MsgType::Cancel, encodePayload(request), MsgType::CancelReply,
        MsgType::CancelReply, /*idempotent=*/true);
    return decodePayload<CancelReply>(reply.payload);
}

StatsReply
QuestClient::stats()
{
    const Frame reply =
        roundTrip(MsgType::Stats, {}, MsgType::StatsReply,
                  MsgType::StatsReply, /*idempotent=*/true);
    return decodePayload<StatsReply>(reply.payload);
}

void
QuestClient::shutdown(bool drain)
{
    ShutdownRequest request;
    request.drain = drain;
    // Not idempotent in spirit (a second Shutdown is harmless but
    // the first may already be tearing the socket down), so no
    // healing: a transport failure here usually *is* the shutdown.
    roundTrip(MsgType::Shutdown, encodePayload(request),
              MsgType::ShutdownReply, MsgType::ShutdownReply,
              /*idempotent=*/false);
}

} // namespace quest::service
