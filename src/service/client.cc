#include "service/client.hh"

#include <unistd.h>

#include "resilience/error.hh"
#include "service/socket.hh"
#include "util/names.hh"

namespace quest::service {

namespace {

using resilience::ErrorCategory;
using resilience::QuestError;

/** The taxonomy code an Error frame carries, back to its category
 *  (inverse of the server's exitCodeFor mapping). */
ErrorCategory
categoryForExitCode(int32_t code)
{
    switch (code) {
      case names::kExitInvalidInput:
        return ErrorCategory::InvalidInput;
      case names::kExitIo:
        return ErrorCategory::Io;
      case names::kExitTimeout:
        return ErrorCategory::Timeout;
      case names::kExitCancelled:
        return ErrorCategory::Cancelled;
      case names::kExitDiverged:
        return ErrorCategory::Diverged;
      case names::kExitResource:
        return ErrorCategory::Resource;
      default:
        return ErrorCategory::Internal;
    }
}

} // namespace

QuestClient
QuestClient::connect(const std::string &path, double timeoutSeconds)
{
    return QuestClient(connectTo(path, timeoutSeconds));
}

QuestClient
QuestClient::fromFd(int fd)
{
    return QuestClient(fd);
}

QuestClient::~QuestClient()
{
    if (sock >= 0)
        ::close(sock);
}

QuestClient::QuestClient(QuestClient &&other) noexcept
    : sock(other.sock)
{
    other.sock = -1;
}

QuestClient &
QuestClient::operator=(QuestClient &&other) noexcept
{
    if (this != &other) {
        if (sock >= 0)
            ::close(sock);
        sock = other.sock;
        other.sock = -1;
    }
    return *this;
}

Frame
QuestClient::roundTrip(MsgType type,
                       const std::vector<uint8_t> &payload,
                       MsgType expect)
{
    if (!sendFrame(sock, type, payload)) {
        throw QuestError(ErrorCategory::Io,
                         std::string("cannot send ") +
                             msgTypeName(type) + " frame");
    }
    RecvResult r = recvFrame(sock);
    switch (r.status) {
      case RecvStatus::Ok:
        break;
      case RecvStatus::Eof:
        throw QuestError(ErrorCategory::Io,
                         "server closed the connection");
      case RecvStatus::IoError:
        throw QuestError(ErrorCategory::Io, r.error);
      default: // Malformed, VersionMismatch, Oversized
        throw QuestError(ErrorCategory::InvalidInput, r.error);
    }
    if (r.frame.type == MsgType::Error) {
        const ErrorReply err =
            decodePayload<ErrorReply>(r.frame.payload);
        throw QuestError(categoryForExitCode(err.exitCode),
                         err.message);
    }
    if (r.frame.type != expect) {
        throw QuestError(ErrorCategory::InvalidInput,
                         std::string("expected a ") +
                             msgTypeName(expect) + " frame, got " +
                             msgTypeName(r.frame.type));
    }
    return std::move(r.frame);
}

SubmitReply
QuestClient::submit(const SubmitRequest &request)
{
    const Frame reply = roundTrip(
        MsgType::Submit, encodePayload(request), MsgType::SubmitReply);
    return decodePayload<SubmitReply>(reply.payload);
}

JobStatus
QuestClient::status(uint64_t jobId)
{
    StatusRequest request;
    request.jobId = jobId;
    const Frame reply = roundTrip(
        MsgType::Status, encodePayload(request), MsgType::StatusReply);
    return decodePayload<JobStatus>(reply.payload);
}

ResultReply
QuestClient::result(uint64_t jobId, bool wait, double timeoutSeconds)
{
    ResultRequest request;
    request.jobId = jobId;
    request.wait = wait;
    request.timeoutSeconds = timeoutSeconds;
    const Frame reply = roundTrip(
        MsgType::Result, encodePayload(request), MsgType::ResultReply);
    return decodePayload<ResultReply>(reply.payload);
}

CancelReply
QuestClient::cancelJob(uint64_t jobId)
{
    CancelRequest request;
    request.jobId = jobId;
    const Frame reply = roundTrip(
        MsgType::Cancel, encodePayload(request), MsgType::CancelReply);
    return decodePayload<CancelReply>(reply.payload);
}

StatsReply
QuestClient::stats()
{
    const Frame reply =
        roundTrip(MsgType::Stats, {}, MsgType::StatsReply);
    return decodePayload<StatsReply>(reply.payload);
}

void
QuestClient::shutdown(bool drain)
{
    ShutdownRequest request;
    request.drain = drain;
    roundTrip(MsgType::Shutdown, encodePayload(request),
              MsgType::ShutdownReply);
}

} // namespace quest::service
