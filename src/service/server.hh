/**
 * @file
 * quest_served's engine: a multi-tenant compile server over QSV1.
 *
 * One QuestServer owns exactly one of each expensive resource and
 * shares it across every job (docs/ARCHITECTURE.md "Compile service
 * layer"):
 *
 *   - one cooperative ThreadPool — injected into each job's pipeline
 *     run (QuestConfig::pool), so N concurrent jobs share one
 *     machine-wide thread budget instead of oversubscribing N-fold;
 *   - one persistent SynthesisCache — injected as the shared hook
 *     (QuestConfig::sharedCache), so identical block unitaries from
 *     *different* tenants' jobs synthesize once (cross-job dedup);
 *   - one QRJ1 service journal (stateDir/service.qrj) recording every
 *     submit and every terminal transition, plus one per-job QUEST
 *     checkpoint journal (stateDir/jobs/<id>) — a restarted daemon
 *     re-enqueues submits without a terminal record and resumes their
 *     block syntheses byte-identically.
 *
 * Jobs flow submit → bounded priority queue → one of E executor
 * threads → terminal state. Admission control is the queue bound:
 * a full queue rejects the submit with the `resource` exit code
 * (load shedding), and per-job deadlines ride the job through
 * resilience::Budget with DeadlinePolicy::Fail. Cancelling a queued
 * job removes it from the queue directly — it never touches the pool
 * or polls a Budget. Delivery is at-most-once: a job whose terminal
 * record was written before a crash is not re-run, and its result
 * payload is not retained across the restart.
 */

#ifndef QUEST_SERVICE_SERVER_HH
#define QUEST_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "quest/config.hh"
#include "resilience/budget.hh"
#include "resilience/journal.hh"
#include "resilience/thread_pool.hh"
#include "service/queue.hh"
#include "service/socket.hh"

namespace quest {
namespace cache {
class SynthesisCache;
} // namespace cache
} // namespace quest

namespace quest::service {

/** One job's full server-side record. The identity/request fields
 *  are immutable after admission; the lifecycle fields are guarded
 *  by QuestServer's state mutex. */
struct Job
{
    explicit Job(const resilience::CancelToken *parent)
        : cancel(parent)
    {}

    uint64_t id = 0;
    uint64_t seq = 0; //!< submission order (queue tiebreak)
    SubmitRequest request;
    bool resumed = false; //!< re-enqueued by crash replay
    resilience::CancelToken cancel;
    resilience::Deadline deadline; //!< armed at admission
    std::chrono::steady_clock::time_point admitted;

    // Guarded by QuestServer::stateMu.
    JobState state = JobState::Queued;
    int exitCode = -1;
    std::string detail;
    uint64_t completionSeq = 0;
    ResultReply result;
};

/** Everything a QuestServer needs to run. */
struct ServerConfig
{
    /** Unix-domain socket path; empty for an attach()-only server
     *  (tests drive it over socketpair fds). */
    std::string socketPath;

    /** Durable state root (service journal + per-job checkpoints);
     *  empty disables crash-safe replay. */
    std::string stateDir;

    /** Shared persistent synthesis cache; empty disables it. */
    std::string cacheDir;
    uint64_t cacheMaxBytes = uint64_t{1} << 30;

    /** Shared pool budget in threads (0 = all cores). */
    unsigned threads = 0;

    /** Executor threads = jobs compiled concurrently. */
    unsigned executors = 2;

    /** Queue bound: submits past it are Rejected (load shedding). */
    size_t queueCapacity = 64;

    /** Per-frame payload cap forwarded to recvFrame(). */
    uint32_t maxFrameBytes = kDefaultMaxPayloadBytes;

    /**
     * Base QuestConfig jobs start from before their CompileOptions
     * apply. Defaults to baseCompileConfig() — quest_compile's
     * config, the byte-identity anchor. Benches override it to run
     * under smoke budgets.
     */
    std::optional<QuestConfig> base;
};

/** The compile service (see the file comment). */
class QuestServer
{
  public:
    /** Opens state (journal replay happens here) and starts the
     *  executor threads. Throws QuestError(Io) on unusable state
     *  or cache directories. */
    explicit QuestServer(ServerConfig config);

    /** stop(true) unless already stopped. */
    ~QuestServer();

    QuestServer(const QuestServer &) = delete;
    QuestServer &operator=(const QuestServer &) = delete;

    /** Bind the socket and start accepting connections. Throws
     *  QuestError(Io) when the socket cannot be bound. */
    void start();

    /** Serve one already-connected stream fd (ownership passes to
     *  the server). Tests drive the full protocol over socketpair. */
    void attach(int fd);

    /**
     * Flag the server as stopping without joining anything —
     * callable from a connection thread (the Shutdown handler).
     * With @p drain, queued jobs still run to completion; without
     * it, queued and running jobs are cancelled.
     */
    void requestStop(bool drain);

    /** Full shutdown: requestStop(@p drain), then join the accept,
     *  executor and connection threads. Idempotent. */
    void stop(bool drain = true);

    /** Block until requestStop() has been called (daemon main). */
    void waitStopRequested();

    bool stopRequested() const { return stopping.load(); }

    /** The externally visible state of one job. */
    JobStatus statusOf(uint64_t jobId) const;

    /** Block until @p jobId is terminal (or @p timeoutSeconds runs
     *  out, 0 = unbounded). Returns its final status. */
    JobStatus waitTerminal(uint64_t jobId, double timeoutSeconds = 0);

    size_t queueDepth() const { return queue.depth(); }

    /** Jobs re-enqueued from the service journal at startup. */
    uint64_t replayedJobs() const { return replayedCount; }

    const std::string &socketPath() const { return cfg.socketPath; }

  private:
    void replayJournal();
    void acceptLoop();
    void serveConnection(int fd);
    bool dispatch(int fd, const Frame &frame);

    SubmitReply handleSubmit(const SubmitRequest &request);
    ResultReply handleResult(const ResultRequest &request);
    CancelReply handleCancel(uint64_t jobId);
    StatsReply handleStats() const;

    void executorLoop();
    void runJob(const std::shared_ptr<Job> &job);

    /** Transition @p job to terminal state @p state (idempotent;
     *  returns false when it already was terminal). Appends the
     *  terminal journal record, bumps the per-state counter and
     *  wakes result waiters. */
    bool finalize(const std::shared_ptr<Job> &job, JobState state,
                  int exitCode, const std::string &detail);

    void setQueueDepthGauge();

    ServerConfig cfg;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<cache::SynthesisCache> diskCache;
    std::unique_ptr<resilience::Journal> journal; //!< under stateMu

    JobQueue queue;
    resilience::CancelToken serverCancel;

    mutable std::mutex stateMu;
    std::condition_variable stateCv;
    std::map<uint64_t, std::shared_ptr<Job>> jobs;
    uint64_t nextId = 1;
    uint64_t nextSeq = 1;
    uint64_t completionCounter = 0;
    uint64_t replayedCount = 0;

    std::atomic<bool> stopping{false};
    bool drainOnStop = true;   //!< under stateMu
    bool stopped = false;      //!< under stateMu (join-once latch)

    std::unique_ptr<Listener> listener;
    std::thread acceptThread;
    std::vector<std::thread> executorThreads;

    std::mutex connMu;
    std::vector<std::thread> connThreads; //!< under connMu
    std::vector<int> connFds;             //!< under connMu, live only
};

} // namespace quest::service

#endif // QUEST_SERVICE_SERVER_HH
