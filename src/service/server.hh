/**
 * @file
 * quest_served's engine: a multi-tenant compile server over QSV1.
 *
 * One QuestServer owns exactly one of each expensive resource and
 * shares it across every job (docs/ARCHITECTURE.md "Compile service
 * layer"):
 *
 *   - one cooperative ThreadPool — injected into each job's pipeline
 *     run (QuestConfig::pool), so N concurrent jobs share one
 *     machine-wide thread budget instead of oversubscribing N-fold;
 *   - one persistent SynthesisCache — injected as the shared hook
 *     (QuestConfig::sharedCache), so identical block unitaries from
 *     *different* tenants' jobs synthesize once (cross-job dedup);
 *   - one QRJ1 service journal (stateDir/service.qrj) recording every
 *     submit and every terminal transition, plus one per-job QUEST
 *     checkpoint journal (stateDir/jobs/<id>) — a restarted daemon
 *     re-enqueues submits without a terminal record and resumes their
 *     block syntheses byte-identically.
 *
 * Jobs flow submit → bounded priority queue → one of E executor
 * threads → terminal state. Admission control is the queue bound:
 * a full queue rejects the submit with the `resource` exit code
 * (load shedding), and per-job deadlines ride the job through
 * resilience::Budget with DeadlinePolicy::Fail. Cancelling a queued
 * job removes it from the queue directly — it never touches the pool
 * or polls a Budget. Delivery is at-most-once: a job whose terminal
 * record was written before a crash is not re-run, and its result
 * payload is not retained across the restart.
 */

#ifndef QUEST_SERVICE_SERVER_HH
#define QUEST_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "quest/config.hh"
#include "resilience/budget.hh"
#include "resilience/journal.hh"
#include "resilience/thread_pool.hh"
#include "service/queue.hh"
#include "service/socket.hh"

namespace quest {
namespace cache {
class SynthesisCache;
} // namespace cache
} // namespace quest

namespace quest::service {

/** One job's full server-side record. The identity/request fields
 *  are immutable after admission; the lifecycle fields are guarded
 *  by QuestServer's state mutex. */
struct Job
{
    explicit Job(const resilience::CancelToken *parent)
        : cancel(parent)
    {}

    uint64_t id = 0;
    uint64_t seq = 0; //!< submission order (queue tiebreak)
    SubmitRequest request;
    bool resumed = false; //!< re-enqueued by crash replay
    resilience::CancelToken cancel;
    resilience::Deadline deadline; //!< armed at admission
    std::chrono::steady_clock::time_point admitted;

    // Guarded by QuestServer::stateMu.
    JobState state = JobState::Queued;
    int exitCode = -1;
    std::string detail;
    uint64_t completionSeq = 0;
    ResultReply result;
};

/** Everything a QuestServer needs to run. */
struct ServerConfig
{
    /** Unix-domain socket path; empty for an attach()-only server
     *  (tests drive it over socketpair fds). */
    std::string socketPath;

    /** Durable state root (service journal + per-job checkpoints);
     *  empty disables crash-safe replay. */
    std::string stateDir;

    /** Shared persistent synthesis cache; empty disables it. */
    std::string cacheDir;
    uint64_t cacheMaxBytes = uint64_t{1} << 30;

    /** Shared pool budget in threads (0 = all cores). */
    unsigned threads = 0;

    /** Executor threads = jobs compiled concurrently. */
    unsigned executors = 2;

    /** Queue bound: submits past it are Rejected (load shedding). */
    size_t queueCapacity = 64;

    /** Per-frame payload cap forwarded to recvFrame(). */
    uint32_t maxFrameBytes = kDefaultMaxPayloadBytes;

    /**
     * Per-frame socket I/O deadline in seconds (0 disables). A peer
     * that starts a frame but fails to finish it — or stops reading
     * our reply until the send buffer fills — past this deadline is
     * a counted drop (`service.recv.stalls`/`service.send.stalls`),
     * not a hung connection thread.
     */
    double ioTimeoutSeconds = 30;

    /** Idle-connection reaper: a connection with no traffic for this
     *  many seconds is closed and counted (`service.conns.reaped`;
     *  0 disables). */
    double idleTimeoutSeconds = 300;

    /** Concurrent-connection cap: a connection past it is refused
     *  with a `resource` Error frame and counted
     *  (`service.conns.rejected`; 0 = unlimited). */
    size_t maxConnections = 64;

    /**
     * Bound on one `result --wait` round trip, in seconds (0 =
     * unbounded, the seed behavior). A job still running when the
     * bound fires earns a Retry reply instead of pinning the
     * connection thread; QuestClient polls again transparently.
     */
    double maxResultWaitSeconds = 5;

    /** Per-tenant fair-share knobs, enforced by the queue: queued
     *  and running caps (0 = unlimited) and round-robin weights. */
    size_t tenantMaxQueued = 0;
    size_t tenantMaxRunning = 0;
    std::map<std::string, uint32_t> tenantWeights;

    /**
     * Base QuestConfig jobs start from before their CompileOptions
     * apply. Defaults to baseCompileConfig() — quest_compile's
     * config, the byte-identity anchor. Benches override it to run
     * under smoke budgets.
     */
    std::optional<QuestConfig> base;
};

/** The compile service (see the file comment). */
class QuestServer
{
  public:
    /** Opens state (journal replay happens here) and starts the
     *  executor threads. Throws QuestError(Io) on unusable state
     *  or cache directories. */
    explicit QuestServer(ServerConfig config);

    /** stop(true) unless already stopped. */
    ~QuestServer();

    QuestServer(const QuestServer &) = delete;
    QuestServer &operator=(const QuestServer &) = delete;

    /** Bind the socket and start accepting connections. Throws
     *  QuestError(Io) when the socket cannot be bound. */
    void start();

    /** Serve one already-connected stream fd (ownership passes to
     *  the server). Tests drive the full protocol over socketpair. */
    void attach(int fd);

    /**
     * Flag the server as stopping without joining anything —
     * callable from a connection thread (the Shutdown handler).
     * With @p drain, queued jobs still run to completion; without
     * it, queued and running jobs are cancelled.
     */
    void requestStop(bool drain);

    /** Full shutdown: requestStop(@p drain), then join the accept,
     *  executor and connection threads. Idempotent. */
    void stop(bool drain = true);

    /** Block until requestStop() has been called (daemon main). */
    void waitStopRequested();

    bool stopRequested() const { return stopping.load(); }

    /** The externally visible state of one job. */
    JobStatus statusOf(uint64_t jobId) const;

    /** Block until @p jobId is terminal (or @p timeoutSeconds runs
     *  out, 0 = unbounded). Returns its final status. */
    JobStatus waitTerminal(uint64_t jobId, double timeoutSeconds = 0);

    size_t queueDepth() const { return queue.depth(); }

    /** Jobs re-enqueued from the service journal at startup. */
    uint64_t replayedJobs() const { return replayedCount; }

    const std::string &socketPath() const { return cfg.socketPath; }

  private:
    /** What handleResult() decided: a final ResultReply, or a
     *  bounded-wait Retry telling the client to poll again. */
    struct ResultDispatch
    {
        bool retry = false;
        ResultReply result;
        RetryReply retryHint;
    };

    void replayJournal();
    void acceptLoop();
    void serveConnection(int fd);
    bool dispatch(int fd, const Frame &frame);

    /** Send one reply frame under the I/O deadline; a stalled or
     *  torn write is counted and returns false (drop the
     *  connection). */
    bool sendReply(int fd, MsgType type,
                   const std::vector<uint8_t> &payload);

    SubmitReply handleSubmit(const SubmitRequest &request);
    ResultDispatch handleResult(const ResultRequest &request);
    CancelReply handleCancel(uint64_t jobId);
    StatsReply handleStats() const;

    /** Deterministic backoff hint for a shed submit: grows linearly
     *  with the tenant's standing (queued + running) load. */
    double retryHintSeconds(const std::string &tenant) const;

    void executorLoop();
    void runJob(const std::shared_ptr<Job> &job);

    /** Transition @p job to terminal state @p state (idempotent;
     *  returns false when it already was terminal). Appends the
     *  terminal journal record, bumps the per-state counter and
     *  wakes result waiters. */
    bool finalize(const std::shared_ptr<Job> &job, JobState state,
                  int exitCode, const std::string &detail);

    void setQueueDepthGauge();

    ServerConfig cfg;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<cache::SynthesisCache> diskCache;
    std::unique_ptr<resilience::Journal> journal; //!< under stateMu

    JobQueue queue;
    resilience::CancelToken serverCancel;

    mutable std::mutex stateMu;
    std::condition_variable stateCv;
    std::map<uint64_t, std::shared_ptr<Job>> jobs;

    /** Idempotency index: "tenant\nsubmissionKey" → the job that
     *  key admitted (under stateMu). Entries live as long as the
     *  job record, so a retried submit of a finished job returns
     *  its terminal state instead of re-running it. */
    std::map<std::string, std::shared_ptr<Job>> submissionIndex;

    uint64_t nextId = 1;
    uint64_t nextSeq = 1;
    uint64_t completionCounter = 0;
    uint64_t replayedCount = 0;

    std::atomic<bool> stopping{false};
    bool drainOnStop = true;   //!< under stateMu
    bool stopped = false;      //!< under stateMu (join-once latch)

    std::unique_ptr<Listener> listener;
    std::thread acceptThread;
    std::vector<std::thread> executorThreads;

    /** One connection thread's slot. `done` flips when the thread
     *  is about to exit, letting attach() join-and-reap finished
     *  slots instead of accumulating dead thread handles forever. */
    struct ConnSlot
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    std::mutex connMu;
    std::list<ConnSlot> connSlots; //!< under connMu
    std::vector<int> connFds;      //!< under connMu, live only

    /** Join and erase finished connection slots (connMu held). */
    void reapConnSlotsLocked();
};

} // namespace quest::service

#endif // QUEST_SERVICE_SERVER_HH
