#include "service/queue.hh"

#include "service/server.hh"

namespace quest::service {

bool
JobQueue::tryPush(std::shared_ptr<Job> job)
{
    std::lock_guard<std::mutex> lock(m);
    if (closed || q.size() >= cap)
        return false;
    q.emplace(Key{job->request.priority, job->seq}, std::move(job));
    cv.notify_one();
    return true;
}

std::shared_ptr<Job>
JobQueue::pop()
{
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return closed || !q.empty(); });
    if (q.empty())
        return nullptr; // closed and drained
    auto it = q.begin();
    std::shared_ptr<Job> job = std::move(it->second);
    q.erase(it);
    return job;
}

std::shared_ptr<Job>
JobQueue::remove(uint64_t jobId)
{
    std::lock_guard<std::mutex> lock(m);
    for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->second->id == jobId) {
            std::shared_ptr<Job> job = std::move(it->second);
            q.erase(it);
            return job;
        }
    }
    return nullptr;
}

std::vector<std::shared_ptr<Job>>
JobQueue::drainAll()
{
    std::lock_guard<std::mutex> lock(m);
    std::vector<std::shared_ptr<Job>> all;
    all.reserve(q.size());
    for (auto &[key, job] : q)
        all.push_back(std::move(job));
    q.clear();
    return all;
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lock(m);
    closed = true;
    cv.notify_all();
}

size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(m);
    return q.size();
}

int
JobQueue::positionOf(uint64_t jobId) const
{
    std::lock_guard<std::mutex> lock(m);
    int pos = 0;
    for (const auto &[key, job] : q) {
        if (job->id == jobId)
            return pos;
        ++pos;
    }
    return -1;
}

} // namespace quest::service
