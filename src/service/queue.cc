#include "service/queue.hh"

#include <algorithm>

#include "service/server.hh"

namespace quest::service {

uint32_t
JobQueue::weightOf(const std::string &tenant) const
{
    auto it = lim.tenantWeights.find(tenant);
    if (it == lim.tenantWeights.end() || it->second == 0)
        return 1;
    return it->second;
}

PushOutcome
JobQueue::tryPush(std::shared_ptr<Job> job)
{
    std::lock_guard<std::mutex> lock(m);
    if (closed || totalQueued >= lim.capacity)
        return PushOutcome::Full;
    const std::string &tenant = job->request.tenant;
    if (lim.tenantMaxQueued > 0) {
        auto it = queuedCount.find(tenant);
        if (it != queuedCount.end() &&
            it->second >= lim.tenantMaxQueued)
            return PushOutcome::TenantQuota;
    }

    Band &band = bands[job->request.priority];
    auto lane = band.lanes.find(tenant);
    if (lane == band.lanes.end()) {
        band.order.push_back(tenant);
        lane = band.lanes.emplace(tenant, std::deque<
                                              std::shared_ptr<Job>>())
                   .first;
    }
    lane->second.push_back(std::move(job));
    ++queuedCount[tenant];
    ++totalQueued;
    cv.notify_one();
    return PushOutcome::Ok;
}

bool
JobQueue::eligibleUnlocked() const
{
    if (lim.tenantMaxRunning == 0)
        return totalQueued > 0;
    for (const auto &[priority, band] : bands) {
        for (const auto &[tenant, lane] : band.lanes) {
            auto it = runningCount.find(tenant);
            const size_t running =
                it == runningCount.end() ? 0 : it->second;
            if (!lane.empty() && running < lim.tenantMaxRunning)
                return true;
        }
    }
    return false;
}

void
JobQueue::eraseLane(Band &band, const std::string &tenant)
{
    band.lanes.erase(tenant);
    auto pos = std::find(band.order.begin(), band.order.end(), tenant);
    const size_t idx =
        static_cast<size_t>(pos - band.order.begin());
    band.order.erase(pos);
    if (idx < band.cursor)
        --band.cursor;
    else if (idx == band.cursor)
        band.credit = 0; // the cursor now names the next tenant
    if (band.cursor >= band.order.size())
        band.cursor = 0;
}

std::shared_ptr<Job>
JobQueue::pop()
{
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return closed || eligibleUnlocked(); });
    if (totalQueued == 0)
        return nullptr; // closed and drained
    if (!eligibleUnlocked()) {
        // Closed while every queued lane is running-capped: wait for
        // a jobFinished() to free a slot (drain still completes).
        cv.wait(lock, [&] {
            return totalQueued == 0 || eligibleUnlocked();
        });
        if (totalQueued == 0)
            return nullptr;
    }

    for (auto &[priority, band] : bands) {
        for (size_t step = 0; step < band.order.size(); ++step) {
            const size_t idx =
                (band.cursor + step) % band.order.size();
            const std::string tenant = band.order[idx];
            if (lim.tenantMaxRunning > 0) {
                auto rit = runningCount.find(tenant);
                if (rit != runningCount.end() &&
                    rit->second >= lim.tenantMaxRunning)
                    continue; // lane blocked: tenant holds its share
            }
            auto &lane = band.lanes.at(tenant);
            std::shared_ptr<Job> job = std::move(lane.front());
            lane.pop_front();

            // Rotation bookkeeping: a skip lands the turn on the
            // tenant we actually served.
            if (idx != band.cursor) {
                band.cursor = idx;
                band.credit = 0;
            }
            ++band.credit;
            if (lane.empty()) {
                eraseLane(band, tenant);
            } else if (band.credit >= weightOf(tenant)) {
                band.cursor = (band.cursor + 1) % band.order.size();
                band.credit = 0;
            }
            if (band.lanes.empty())
                bands.erase(priority);

            if (--queuedCount[tenant] == 0)
                queuedCount.erase(tenant);
            --totalQueued;
            ++runningCount[tenant];
            return job;
        }
    }
    return nullptr; // unreachable: eligibleUnlocked() held the lock
}

void
JobQueue::jobFinished(const std::string &tenant)
{
    std::lock_guard<std::mutex> lock(m);
    auto it = runningCount.find(tenant);
    if (it == runningCount.end())
        return;
    if (--it->second == 0)
        runningCount.erase(it);
    cv.notify_all(); // a lane may have just become eligible
}

std::shared_ptr<Job>
JobQueue::remove(uint64_t jobId)
{
    std::lock_guard<std::mutex> lock(m);
    for (auto &[priority, band] : bands) {
        for (auto &[tenant, lane] : band.lanes) {
            for (auto it = lane.begin(); it != lane.end(); ++it) {
                if ((*it)->id != jobId)
                    continue;
                std::shared_ptr<Job> job = std::move(*it);
                lane.erase(it);
                if (--queuedCount[tenant] == 0)
                    queuedCount.erase(tenant);
                --totalQueued;
                if (lane.empty()) {
                    const std::string t = tenant;
                    eraseLane(band, t);
                    if (band.lanes.empty())
                        bands.erase(priority);
                }
                return job;
            }
        }
    }
    return nullptr;
}

std::vector<std::shared_ptr<Job>>
JobQueue::drainAll()
{
    std::lock_guard<std::mutex> lock(m);
    std::vector<std::shared_ptr<Job>> all;
    all.reserve(totalQueued);
    for (auto &[priority, band] : bands)
        for (auto &[tenant, lane] : band.lanes)
            for (auto &job : lane)
                all.push_back(std::move(job));
    bands.clear();
    queuedCount.clear();
    totalQueued = 0;
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  if (a->request.priority != b->request.priority)
                      return a->request.priority >
                             b->request.priority;
                  return a->seq < b->seq;
              });
    return all;
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lock(m);
    closed = true;
    cv.notify_all();
}

size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lock(m);
    return totalQueued;
}

size_t
JobQueue::queuedOf(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(m);
    auto it = queuedCount.find(tenant);
    return it == queuedCount.end() ? 0 : it->second;
}

size_t
JobQueue::runningOf(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(m);
    auto it = runningCount.find(tenant);
    return it == runningCount.end() ? 0 : it->second;
}

int
JobQueue::positionOf(uint64_t jobId) const
{
    std::lock_guard<std::mutex> lock(m);
    int pos = 0;
    for (const auto &[priority, band] : bands) {
        // Simulate this band's WRR rotation on copies of the
        // rotation state (running caps ignored; see the header).
        std::vector<std::string> order = band.order;
        size_t cursor = band.cursor;
        uint32_t credit = band.credit;
        std::map<std::string, size_t> taken;
        size_t left = 0;
        for (const auto &[tenant, lane] : band.lanes)
            left += lane.size();
        while (left > 0) {
            const std::string tenant = order[cursor];
            const auto &lane = band.lanes.at(tenant);
            const size_t at = taken[tenant]++;
            if (lane[at]->id == jobId)
                return pos;
            ++pos;
            --left;
            ++credit;
            if (taken[tenant] == lane.size()) {
                const size_t idx = cursor;
                order.erase(order.begin() +
                            static_cast<long>(idx));
                credit = 0;
                if (cursor >= order.size())
                    cursor = 0;
            } else if (credit >= weightOf(tenant)) {
                cursor = (cursor + 1) % order.size();
                credit = 0;
            }
        }
    }
    return -1;
}

} // namespace quest::service
