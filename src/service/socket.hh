/**
 * @file
 * Local stream-socket transport for QSV1 frames: a unix-domain
 * listener, a connect helper, and blocking frame send/receive over a
 * connected fd.
 *
 * The receive path never throws on bad peer bytes — a daemon must
 * survive any garbage a client writes — so recvFrame() classifies the
 * defect (malformed, version mismatch, oversized, EOF, I/O error,
 * stalled, idle) and the server turns it into an Error reply plus a
 * counted rejection, or a counted drop. Both directions carry
 * deadlines: recvFrame() bounds the wait for a whole frame once its
 * first byte arrives (a slowloris peer that dribbles a header is
 * Stalled, not a hung thread) and separately bounds the wait for
 * that first byte (an idle connection is reaped); sendFrame() bounds
 * the write symmetrically, so a peer that stops reading until our
 * send buffer fills is a counted drop too. The failure-prone
 * syscalls carry fault points (`service.accept`, `service.write`,
 * `service.recv.stall`) so the resilience suite can prove a dropped
 * accept, a torn write or a stalled read degrades to one closed
 * connection, never a wedged daemon.
 */

#ifndef QUEST_SERVICE_SOCKET_HH
#define QUEST_SERVICE_SOCKET_HH

#include <string>

#include "service/protocol.hh"

namespace quest::service {

/** Why recvFrame() did not produce a frame. */
enum class RecvStatus {
    Ok,
    Eof,             //!< clean close at a frame boundary
    Malformed,       //!< bad magic, truncation, checksum, bad payload
    VersionMismatch, //!< well-framed but a different QSV version
    Oversized,       //!< length prefix exceeds the payload cap
    IoError,         //!< read(2) failed
    Stalled,         //!< frame started but the I/O deadline passed
    Idle,            //!< no first byte within the idle deadline
};

/** One receive attempt: the frame on Ok, a diagnostic otherwise. */
struct RecvResult
{
    RecvStatus status = RecvStatus::IoError;
    Frame frame;
    std::string error;
};

/** How a sendFrame()/sendExact() attempt ended. */
enum class SendStatus {
    Ok,
    Error,   //!< EPIPE, torn connection, injected `service.write`
    Stalled, //!< peer stopped reading past the I/O deadline
};

/**
 * Deadlines for one frame exchange, in milliseconds; -1 disables a
 * deadline (the seed's fully blocking behavior).
 */
struct SocketTimeouts
{
    /** Budget for a whole frame once its first byte arrived (and
     *  for a whole outgoing frame). Exceeding it is Stalled — the
     *  slowloris classification. */
    int ioMs = -1;

    /** Receive-only: how long to wait for a frame to *start*.
     *  Exceeding it is Idle — the reaper classification. */
    int idleMs = -1;
};

/**
 * Read exactly one frame from @p fd. Header and payload are
 * validated as in decodeFrame(); mid-frame EOF is Malformed (a torn
 * frame), EOF before any header byte is Eof. With deadlines set, a
 * frame that fails to complete within `ioMs` of its first byte is
 * Stalled and a connection with no traffic for `idleMs` is Idle;
 * either way no bytes past the failure are consumed and the
 * caller's contract is to drop the connection.
 */
RecvResult recvFrame(int fd,
                     uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes,
                     SocketTimeouts timeouts = {});

/**
 * Write one whole frame to @p fd, bounded by @p ioTimeoutMs (-1 =
 * no deadline). Error means the connection is torn (EPIPE or an
 * injected `service.write` fault); Stalled means the peer stopped
 * draining its socket until our send buffer filled past the
 * deadline. Either non-Ok status obliges the caller to drop the
 * connection.
 */
SendStatus sendFrame(int fd, MsgType type,
                     const std::vector<uint8_t> &payload,
                     int ioTimeoutMs = -1);

/** sendFrame()'s byte-level core, exposed for the slowloris tests:
 *  write exactly @p n bytes within @p ioTimeoutMs. */
SendStatus sendExact(int fd, const uint8_t *data, size_t n,
                     int ioTimeoutMs = -1);

/**
 * A bound, listening unix-domain stream socket. The constructor
 * unlinks any stale socket file at @p path first; close() (and the
 * destructor) unlink it again.
 */
class Listener
{
  public:
    /** Throws QuestError(Io) when bind/listen fails (e.g. the path
     *  exceeds sockaddr_un limits or the directory is missing). */
    explicit Listener(const std::string &path);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Wait up to @p timeoutMs for one connection. Returns the
     * connected fd, or -1 on timeout, a transient accept failure, or
     * an injected `service.accept` fault (the connection, if any,
     * is closed — the client sees a drop and may retry).
     */
    int acceptConnection(int timeoutMs);

    /** Close the listening socket and unlink the path (idempotent). */
    void close();

    const std::string &path() const { return sockPath; }

  private:
    int fd = -1;
    std::string sockPath;
};

/**
 * Connect to the listener at @p path, retrying a missing or
 * not-yet-listening socket until @p timeoutSeconds elapses (a daemon
 * that was just spawned needs a moment to bind). Throws
 * QuestError(Io) when the deadline passes without a connection.
 */
int connectTo(const std::string &path, double timeoutSeconds);

} // namespace quest::service

#endif // QUEST_SERVICE_SOCKET_HH
