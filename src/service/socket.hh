/**
 * @file
 * Local stream-socket transport for QSV1 frames: a unix-domain
 * listener, a connect helper, and blocking frame send/receive over a
 * connected fd.
 *
 * The receive path never throws on bad peer bytes — a daemon must
 * survive any garbage a client writes — so recvFrame() classifies the
 * defect (malformed, version mismatch, oversized, EOF, I/O error)
 * and the server turns it into an Error reply plus a counted
 * rejection. The failure-prone syscalls carry fault points
 * (`service.accept`, `service.write`) so the resilience suite can
 * prove a dropped accept or a torn write degrades to one closed
 * connection, never a wedged daemon.
 */

#ifndef QUEST_SERVICE_SOCKET_HH
#define QUEST_SERVICE_SOCKET_HH

#include <string>

#include "service/protocol.hh"

namespace quest::service {

/** Why recvFrame() did not produce a frame. */
enum class RecvStatus {
    Ok,
    Eof,             //!< clean close at a frame boundary
    Malformed,       //!< bad magic, truncation, checksum, bad payload
    VersionMismatch, //!< well-framed but a different QSV version
    Oversized,       //!< length prefix exceeds the payload cap
    IoError,         //!< read(2) failed
};

/** One receive attempt: the frame on Ok, a diagnostic otherwise. */
struct RecvResult
{
    RecvStatus status = RecvStatus::IoError;
    Frame frame;
    std::string error;
};

/**
 * Read exactly one frame from @p fd (blocking). Header and payload
 * are validated as in decodeFrame(); mid-frame EOF is Malformed
 * (a torn frame), EOF before any header byte is Eof.
 */
RecvResult recvFrame(int fd,
                     uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes);

/**
 * Write one whole frame to @p fd. Returns false when the write fails
 * (EPIPE, a torn connection, or an injected `service.write` fault);
 * the caller's contract is then to drop the connection.
 */
bool sendFrame(int fd, MsgType type,
               const std::vector<uint8_t> &payload);

/**
 * A bound, listening unix-domain stream socket. The constructor
 * unlinks any stale socket file at @p path first; close() (and the
 * destructor) unlink it again.
 */
class Listener
{
  public:
    /** Throws QuestError(Io) when bind/listen fails (e.g. the path
     *  exceeds sockaddr_un limits or the directory is missing). */
    explicit Listener(const std::string &path);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Wait up to @p timeoutMs for one connection. Returns the
     * connected fd, or -1 on timeout, a transient accept failure, or
     * an injected `service.accept` fault (the connection, if any,
     * is closed — the client sees a drop and may retry).
     */
    int acceptConnection(int timeoutMs);

    /** Close the listening socket and unlink the path (idempotent). */
    void close();

    const std::string &path() const { return sockPath; }

  private:
    int fd = -1;
    std::string sockPath;
};

/**
 * Connect to the listener at @p path, retrying a missing or
 * not-yet-listening socket until @p timeoutSeconds elapses (a daemon
 * that was just spawned needs a moment to bind). Throws
 * QuestError(Io) when the deadline passes without a connection.
 */
int connectTo(const std::string &path, double timeoutSeconds);

} // namespace quest::service

#endif // QUEST_SERVICE_SOCKET_HH
