#include "service/protocol.hh"

#include <cstring>

namespace quest::service {

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Submit:
        return "submit";
      case MsgType::SubmitReply:
        return "submit-reply";
      case MsgType::Status:
        return "status";
      case MsgType::StatusReply:
        return "status-reply";
      case MsgType::Result:
        return "result";
      case MsgType::ResultReply:
        return "result-reply";
      case MsgType::Cancel:
        return "cancel";
      case MsgType::CancelReply:
        return "cancel-reply";
      case MsgType::Stats:
        return "stats";
      case MsgType::StatsReply:
        return "stats-reply";
      case MsgType::Shutdown:
        return "shutdown";
      case MsgType::ShutdownReply:
        return "shutdown-reply";
      case MsgType::Error:
        return "error";
      case MsgType::Retry:
        return "retry";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeFrame(MsgType type, const std::vector<uint8_t> &payload)
{
    ByteWriter w;
    w.bytes(kFrameMagic, sizeof kFrameMagic);
    w.u16(kProtocolVersion);
    w.u16(static_cast<uint16_t>(type));
    w.u32(static_cast<uint32_t>(payload.size()));
    if (!payload.empty())
        w.bytes(payload.data(), payload.size());
    w.u64(fnv1a64(payload.data(), payload.size()));
    return w.take();
}

Frame
decodeFrame(const uint8_t *data, size_t size, uint32_t maxPayloadBytes)
{
    ByteReader r(data, size);
    uint8_t magic[4];
    r.bytes(magic, sizeof magic);
    if (std::memcmp(magic, kFrameMagic, sizeof magic) != 0)
        throw SerializeError("bad frame magic (want \"QSV1\")");
    const uint16_t version = r.u16();
    if (version != kProtocolVersion) {
        throw SerializeError(
            "protocol version mismatch: got " +
            std::to_string(version) + ", this server speaks " +
            std::to_string(kProtocolVersion));
    }
    const uint16_t type = r.u16();
    const uint32_t length = r.u32();
    if (length > maxPayloadBytes) {
        throw SerializeError(
            "oversized frame payload: " + std::to_string(length) +
            " bytes exceeds the " + std::to_string(maxPayloadBytes) +
            "-byte cap");
    }
    Frame frame;
    frame.type = static_cast<MsgType>(type);
    frame.payload.resize(length);
    if (length > 0)
        r.bytes(frame.payload.data(), length);
    const uint64_t want = r.u64();
    const uint64_t got =
        fnv1a64(frame.payload.data(), frame.payload.size());
    if (want != got)
        throw SerializeError("frame payload checksum mismatch");
    if (!r.atEnd()) {
        throw SerializeError("trailing bytes after frame: " +
                             std::to_string(r.remaining()) + " unread");
    }
    return frame;
}

// ---- message payloads --------------------------------------------

namespace {

void
encodeOptions(ByteWriter &w, const CompileOptions &o)
{
    w.f64(o.threshold);
    w.i32(o.maxSamples);
    w.i32(o.maxLayers);
    w.i32(o.blockSize);
    w.u64(o.seed);
    w.u8(static_cast<uint8_t>(o.selectionMode));
}

CompileOptions
decodeOptions(ByteReader &r)
{
    CompileOptions o;
    o.threshold = r.f64();
    o.maxSamples = r.i32();
    o.maxLayers = r.i32();
    o.blockSize = r.i32();
    o.seed = r.u64();
    const uint8_t mode = r.u8();
    if (mode > static_cast<uint8_t>(SelectionMode::BlockBound))
        throw SerializeError("bad selection mode " +
                             std::to_string(mode));
    o.selectionMode = static_cast<SelectionMode>(mode);
    return o;
}

void
encodeNamedValues(ByteWriter &w,
                  const std::vector<std::pair<std::string, uint64_t>> &kv)
{
    w.u32(static_cast<uint32_t>(kv.size()));
    for (const auto &[name, value] : kv) {
        w.str(name);
        w.u64(value);
    }
}

std::vector<std::pair<std::string, uint64_t>>
decodeNamedValues(ByteReader &r)
{
    const uint32_t n = r.u32();
    std::vector<std::pair<std::string, uint64_t>> kv;
    kv.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        std::string name = r.str();
        const uint64_t value = r.u64();
        kv.emplace_back(std::move(name), value);
    }
    return kv;
}

JobState
decodeState(ByteReader &r)
{
    const uint8_t raw = r.u8();
    if (raw > static_cast<uint8_t>(JobState::Expired))
        throw SerializeError("bad job state " + std::to_string(raw));
    return static_cast<JobState>(raw);
}

} // namespace

void
SubmitRequest::encode(ByteWriter &w) const
{
    w.i32(priority);
    w.f64(deadlineSeconds);
    encodeOptions(w, options);
    w.str(tenant);
    w.str(submissionKey);
    w.str(qasm);
}

SubmitRequest
SubmitRequest::decode(ByteReader &r)
{
    SubmitRequest m;
    m.priority = r.i32();
    m.deadlineSeconds = r.f64();
    m.options = decodeOptions(r);
    m.tenant = r.str();
    m.submissionKey = r.str();
    m.qasm = r.str();
    return m;
}

void
SubmitReply::encode(ByteWriter &w) const
{
    w.u64(jobId);
    w.u8(accepted ? 1 : 0);
    w.u8(static_cast<uint8_t>(state));
    w.str(detail);
    w.u8(deduplicated ? 1 : 0);
    w.f64(retryAfterSeconds);
}

SubmitReply
SubmitReply::decode(ByteReader &r)
{
    SubmitReply m;
    m.jobId = r.u64();
    m.accepted = r.u8() != 0;
    m.state = decodeState(r);
    m.detail = r.str();
    m.deduplicated = r.u8() != 0;
    m.retryAfterSeconds = r.f64();
    return m;
}

void
StatusRequest::encode(ByteWriter &w) const
{
    w.u64(jobId);
}

StatusRequest
StatusRequest::decode(ByteReader &r)
{
    StatusRequest m;
    m.jobId = r.u64();
    return m;
}

void
JobStatus::encode(ByteWriter &w) const
{
    w.u64(jobId);
    w.u8(known ? 1 : 0);
    w.u8(static_cast<uint8_t>(state));
    w.i32(exitCode);
    w.u32(queuePosition);
    w.u64(completionSeq);
    w.str(detail);
}

JobStatus
JobStatus::decode(ByteReader &r)
{
    JobStatus m;
    m.jobId = r.u64();
    m.known = r.u8() != 0;
    m.state = decodeState(r);
    m.exitCode = r.i32();
    m.queuePosition = r.u32();
    m.completionSeq = r.u64();
    m.detail = r.str();
    return m;
}

void
ResultRequest::encode(ByteWriter &w) const
{
    w.u64(jobId);
    w.u8(wait ? 1 : 0);
    w.f64(timeoutSeconds);
}

ResultRequest
ResultRequest::decode(ByteReader &r)
{
    ResultRequest m;
    m.jobId = r.u64();
    m.wait = r.u8() != 0;
    m.timeoutSeconds = r.f64();
    return m;
}

void
ResultReply::encode(ByteWriter &w) const
{
    status.encode(w);
    w.u32(qubits);
    w.u64(originalCnots);
    w.u64(blocks);
    w.u64(okBlocks);
    w.f64(threshold);
    w.u32(static_cast<uint32_t>(samples.size()));
    for (const SampleResult &s : samples) {
        w.str(s.qasm);
        w.u64(s.cnotCount);
        w.f64(s.distanceBound);
    }
    encodeNamedValues(w, metrics);
}

ResultReply
ResultReply::decode(ByteReader &r)
{
    ResultReply m;
    m.status = JobStatus::decode(r);
    m.qubits = r.u32();
    m.originalCnots = r.u64();
    m.blocks = r.u64();
    m.okBlocks = r.u64();
    m.threshold = r.f64();
    const uint32_t n = r.u32();
    m.samples.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        SampleResult s;
        s.qasm = r.str();
        s.cnotCount = r.u64();
        s.distanceBound = r.f64();
        m.samples.push_back(std::move(s));
    }
    m.metrics = decodeNamedValues(r);
    return m;
}

void
CancelRequest::encode(ByteWriter &w) const
{
    w.u64(jobId);
}

CancelRequest
CancelRequest::decode(ByteReader &r)
{
    CancelRequest m;
    m.jobId = r.u64();
    return m;
}

void
CancelReply::encode(ByteWriter &w) const
{
    w.u64(jobId);
    w.u8(static_cast<uint8_t>(outcome));
}

CancelReply
CancelReply::decode(ByteReader &r)
{
    CancelReply m;
    m.jobId = r.u64();
    const uint8_t raw = r.u8();
    if (raw > static_cast<uint8_t>(CancelOutcome::AlreadyDone))
        throw SerializeError("bad cancel outcome " + std::to_string(raw));
    m.outcome = static_cast<CancelOutcome>(raw);
    return m;
}

void
StatsReply::encode(ByteWriter &w) const
{
    encodeNamedValues(w, stats);
}

StatsReply
StatsReply::decode(ByteReader &r)
{
    StatsReply m;
    m.stats = decodeNamedValues(r);
    return m;
}

void
ShutdownRequest::encode(ByteWriter &w) const
{
    w.u8(drain ? 1 : 0);
}

ShutdownRequest
ShutdownRequest::decode(ByteReader &r)
{
    ShutdownRequest m;
    m.drain = r.u8() != 0;
    return m;
}

void
ErrorReply::encode(ByteWriter &w) const
{
    w.i32(exitCode);
    w.str(message);
}

ErrorReply
ErrorReply::decode(ByteReader &r)
{
    ErrorReply m;
    m.exitCode = r.i32();
    m.message = r.str();
    return m;
}

void
RetryReply::encode(ByteWriter &w) const
{
    status.encode(w);
    w.f64(retryAfterSeconds);
}

RetryReply
RetryReply::decode(ByteReader &r)
{
    RetryReply m;
    m.status = JobStatus::decode(r);
    m.retryAfterSeconds = r.f64();
    return m;
}

} // namespace quest::service
