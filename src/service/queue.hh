/**
 * @file
 * Bounded, deterministic, tenant-fair priority queue of pending jobs.
 *
 * Ordering is priority bands first (higher priority always pops
 * before lower), then *weighted round-robin across tenants* within a
 * band: each tenant owns a FIFO lane, lanes rotate in first-seen
 * submission order, and a tenant with weight w takes up to w
 * consecutive pops per turn. With one executor the completion order
 * of a job set is a pure function of (priorities, tenants, weights,
 * submission order), which the service determinism tests pin; a
 * single-tenant workload degenerates to the seed's exact
 * priority-then-FIFO order.
 *
 * The queue is also the admission-control valve. tryPush() refuses
 * with Full when the global bound is hit and with TenantQuota when
 * one tenant's queued share is exhausted — the server maps either
 * refusal to a Rejected job with the `resource` exit code plus a
 * deterministic retry-after hint, so an overloaded daemon sheds load
 * (and a noisy tenant sheds *first*) instead of growing without
 * bound. A per-tenant running cap makes pop() skip lanes whose
 * tenant already holds its share of executors, so fairness covers
 * execution, not just queue order.
 */

#ifndef QUEST_SERVICE_QUEUE_HH
#define QUEST_SERVICE_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace quest::service {

struct Job;

/** Why tryPush() refused (Ok admits). */
enum class PushOutcome {
    Ok,
    Full,        //!< global capacity hit (or the queue is closed)
    TenantQuota, //!< this tenant's queued share is exhausted
};

/** The queue's admission and fairness knobs. */
struct QueueLimits
{
    size_t capacity = 64;       //!< global bound (admission valve)
    size_t tenantMaxQueued = 0; //!< per-tenant queued cap (0 = none)
    size_t tenantMaxRunning = 0; //!< per-tenant running cap (0 = none)

    /** Round-robin weights; absent tenants weigh 1. A tenant with
     *  weight w takes up to w consecutive pops per rotation turn. */
    std::map<std::string, uint32_t> tenantWeights;
};

/** Thread-safe bounded tenant-fair priority queue (file comment). */
class JobQueue
{
  public:
    explicit JobQueue(QueueLimits limits) : lim(std::move(limits)) {}
    explicit JobQueue(size_t capacity) : JobQueue(QueueLimits{
          capacity, 0, 0, {}})
    {}

    /**
     * Admit @p job (keyed by its tenant, priority and submission
     * seq). A non-Ok outcome means nothing was queued: Full when the
     * global capacity is hit or the queue is closed, TenantQuota
     * when the job's tenant already holds its queued share.
     */
    PushOutcome tryPush(std::shared_ptr<Job> job);

    /**
     * Block until an *eligible* job is available or the queue is
     * closed. Returns the next job per band-then-WRR order — lanes
     * whose tenant is at its running cap are skipped — or nullptr
     * once the queue is closed *and* drained; executors use nullptr
     * as their exit signal, so a draining shutdown finishes queued
     * work first. The popped job's tenant is counted as running
     * until jobFinished().
     */
    std::shared_ptr<Job> pop();

    /** Release the running slot pop() charged to @p tenant (call
     *  once per popped job, after it reached a terminal state). */
    void jobFinished(const std::string &tenant);

    /** Remove a queued job by id (cancellation before it ever ran).
     *  Returns the job, or nullptr when it is not queued here. */
    std::shared_ptr<Job> remove(uint64_t jobId);

    /** Remove and return everything queued (non-drain shutdown),
     *  ordered by priority desc then submission seq. */
    std::vector<std::shared_ptr<Job>> drainAll();

    /** Stop admitting; pop() returns queued jobs then nullptr. */
    void close();

    size_t depth() const;

    /** Queued jobs of @p tenant (the retry-hint input). */
    size_t queuedOf(const std::string &tenant) const;

    /** Running jobs charged to @p tenant. */
    size_t runningOf(const std::string &tenant) const;

    /**
     * 0-based position of a queued job in pop order; -1 if absent.
     * Computed by simulating the WRR rotation with running caps
     * ignored (caps depend on future completions), so it is exact
     * under pure queueing and best-effort under a running cap.
     */
    int positionOf(uint64_t jobId) const;

  private:
    /** One priority band: per-tenant FIFO lanes plus the rotation
     *  state. `order` lists tenants by first arrival into this band
     *  and is the deterministic rotation sequence; `cursor`/`credit`
     *  say whose turn it is and how much of its weight it has used. */
    struct Band
    {
        std::vector<std::string> order;
        size_t cursor = 0;
        uint32_t credit = 0;
        std::map<std::string, std::deque<std::shared_ptr<Job>>> lanes;
    };

    uint32_t weightOf(const std::string &tenant) const;
    bool eligibleUnlocked() const;
    void eraseLane(Band &band, const std::string &tenant);

    mutable std::mutex m;
    std::condition_variable cv;
    std::map<int32_t, Band, std::greater<int32_t>> bands;
    std::map<std::string, size_t> queuedCount;
    std::map<std::string, size_t> runningCount;
    size_t totalQueued = 0;
    QueueLimits lim;
    bool closed = false;
};

} // namespace quest::service

#endif // QUEST_SERVICE_QUEUE_HH
