/**
 * @file
 * Bounded, deterministic priority queue of pending jobs.
 *
 * Ordering is (higher priority, then lower submission sequence):
 * with one executor the completion order of a job set is a pure
 * function of (priorities, submission order), which the service
 * determinism test pins. The bound is the admission-control valve —
 * tryPush() refuses when full and the server maps the refusal to a
 * Rejected job with the `resource` exit code, so an overloaded
 * daemon sheds load instead of growing without bound.
 */

#ifndef QUEST_SERVICE_QUEUE_HH
#define QUEST_SERVICE_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace quest::service {

struct Job;

/** Thread-safe bounded priority queue (see the file comment). */
class JobQueue
{
  public:
    explicit JobQueue(size_t capacity) : cap(capacity) {}

    /**
     * Admit @p job (keyed by its id, priority and submission seq).
     * Returns false — without queuing — when the queue is full or
     * already closed.
     */
    bool tryPush(std::shared_ptr<Job> job);

    /**
     * Block until a job is available or the queue is closed. Returns
     * the highest-priority (then oldest) job, or nullptr once the
     * queue is closed *and* drained — executors use nullptr as their
     * exit signal, so a draining shutdown finishes queued work first.
     */
    std::shared_ptr<Job> pop();

    /** Remove a queued job by id (cancellation before it ever ran).
     *  Returns the job, or nullptr when it is not queued here. */
    std::shared_ptr<Job> remove(uint64_t jobId);

    /** Remove and return everything queued (non-drain shutdown). */
    std::vector<std::shared_ptr<Job>> drainAll();

    /** Stop admitting; pop() returns queued jobs then nullptr. */
    void close();

    size_t depth() const;

    /** 0-based position of a queued job in pop order; -1 if absent. */
    int positionOf(uint64_t jobId) const;

  private:
    /** Pop order: higher priority first, FIFO within a priority. */
    struct Key
    {
        int32_t priority;
        uint64_t seq;

        bool
        operator<(const Key &o) const
        {
            if (priority != o.priority)
                return priority > o.priority;
            return seq < o.seq;
        }
    };

    mutable std::mutex m;
    std::condition_variable cv;
    std::map<Key, std::shared_ptr<Job>> q;
    size_t cap;
    bool closed = false;
};

} // namespace quest::service

#endif // QUEST_SERVICE_QUEUE_HH
