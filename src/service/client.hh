/**
 * @file
 * Synchronous QSV1 client: one connection, one request in flight.
 *
 * Each call sends one request frame and blocks for the matching
 * reply. A server-side Error frame is rethrown locally as the
 * QuestError its taxonomy code names, so `quest_client` exits with
 * the same code a local `quest_compile` of the job would have —
 * docs/REGISTRY.md "Job states" pins that mapping.
 */

#ifndef QUEST_SERVICE_CLIENT_HH
#define QUEST_SERVICE_CLIENT_HH

#include <string>
#include <vector>

#include "service/protocol.hh"

namespace quest::service {

/** See the file comment. Move-only; owns its socket fd. */
class QuestClient
{
  public:
    /** Connect to a daemon's Unix socket, retrying until
     *  @p timeoutSeconds. Throws QuestError(Io) on failure. */
    static QuestClient connect(const std::string &path,
                               double timeoutSeconds = 5.0);

    /** Adopt an already-connected stream fd (socketpair tests). */
    static QuestClient fromFd(int fd);

    ~QuestClient();

    QuestClient(QuestClient &&other) noexcept;
    QuestClient &operator=(QuestClient &&other) noexcept;
    QuestClient(const QuestClient &) = delete;
    QuestClient &operator=(const QuestClient &) = delete;

    SubmitReply submit(const SubmitRequest &request);
    JobStatus status(uint64_t jobId);
    ResultReply result(uint64_t jobId, bool wait = true,
                       double timeoutSeconds = 0);
    CancelReply cancelJob(uint64_t jobId);
    StatsReply stats();

    /** Ask the daemon to stop (drain: finish queued jobs first).
     *  Returns once the daemon acknowledged. */
    void shutdown(bool drain = true);

    int fd() const { return sock; }

  private:
    explicit QuestClient(int fd) : sock(fd) {}

    /** Send @p type + @p payload, receive one frame, demand
     *  @p expect. Error frames and transport failures throw
     *  QuestError. */
    Frame roundTrip(MsgType type, const std::vector<uint8_t> &payload,
                    MsgType expect);

    int sock = -1;
};

} // namespace quest::service

#endif // QUEST_SERVICE_CLIENT_HH
