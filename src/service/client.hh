/**
 * @file
 * Synchronous QSV1 client: one connection, one request in flight —
 * now self-healing.
 *
 * Each call sends one request frame and blocks for the matching
 * reply. A server-side Error frame is rethrown locally as the
 * QuestError its taxonomy code names, so `quest_client` exits with
 * the same code a local `quest_compile` of the job would have —
 * docs/REGISTRY.md "Job states" pins that mapping.
 *
 * A client built by connect() additionally heals transport failures
 * (torn sends, EOF or read errors mid-round-trip): it closes the
 * dead socket, sleeps per a deterministic exponential-backoff
 * schedule, reconnects and resends. Only *idempotent* requests are
 * resent — status/result/cancel/stats always are, and a submit is
 * iff it carries a submission key (the server dedups the retry onto
 * the original job). Server Error frames are definitive answers and
 * never retried. The backoff jitter comes from a seeded `Rng`
 * stream, so the schedule is a pure function of the policy — the
 * determinism the analyzer and the backoff test pin (wall-clock
 * sleeps are allowlisted in `src/service/`, like every service-side
 * clock; they pace I/O and never touch a compile result).
 *
 * Retry/Retry-frame handling rides the same loop: result() polls
 * again whenever the server's bounded wait returns a Retry frame,
 * so `result --wait` composes bounded server slices into the
 * unbounded wait callers see.
 */

#ifndef QUEST_SERVICE_CLIENT_HH
#define QUEST_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace quest::service {

/** Reconnect-and-resend policy for transport failures. */
struct RetryPolicy
{
    /** Reconnect attempts per request after the first try fails;
     *  0 disables healing (every transport failure throws). */
    int retries = 3;

    double baseDelaySeconds = 0.05; //!< first backoff step
    double maxDelaySeconds = 2.0;   //!< exponential growth cap

    /** Jitter stream seed. Same seed → same schedule, always. */
    uint64_t seed = 0x51535631;
};

/**
 * The deterministic backoff schedule @p policy produces: attempt k
 * sleeps min(max, base·2^k) scaled into [50%, 100%] by the k-th
 * draw of a PCG32 stream seeded by policy.seed. Exposed so tests
 * (and operators debugging retry storms) can reproduce the exact
 * schedule a client will follow.
 */
std::vector<double> backoffSchedule(const RetryPolicy &policy,
                                    size_t attempts);

/** See the file comment. Move-only; owns its socket fd. */
class QuestClient
{
  public:
    /** Connect to a daemon's Unix socket, retrying until
     *  @p timeoutSeconds. Throws QuestError(Io) on failure. The
     *  returned client heals per @p policy. */
    static QuestClient connect(const std::string &path,
                               double timeoutSeconds = 5.0,
                               RetryPolicy policy = {});

    /** Adopt an already-connected stream fd (socketpair tests).
     *  No reconnect path exists, so such a client never heals. */
    static QuestClient fromFd(int fd);

    ~QuestClient();

    QuestClient(QuestClient &&other) noexcept;
    QuestClient &operator=(QuestClient &&other) noexcept;
    QuestClient(const QuestClient &) = delete;
    QuestClient &operator=(const QuestClient &) = delete;

    /** Resent on transport failure only when request.submissionKey
     *  is non-empty (the server's dedup makes that retry safe). */
    SubmitReply submit(const SubmitRequest &request);

    JobStatus status(uint64_t jobId);

    /** Blocks until the job is terminal (or @p timeoutSeconds runs
     *  out, 0 = unbounded), transparently re-polling through the
     *  server's bounded-wait Retry frames. */
    ResultReply result(uint64_t jobId, bool wait = true,
                       double timeoutSeconds = 0);

    CancelReply cancelJob(uint64_t jobId);
    StatsReply stats();

    /** Ask the daemon to stop (drain: finish queued jobs first).
     *  Returns once the daemon acknowledged. */
    void shutdown(bool drain = true);

    int fd() const { return sock; }

  private:
    explicit QuestClient(int fd) : sock(fd) {}

    /**
     * Send @p type + @p payload, receive one frame, demand
     * @p expect (or @p alsoExpect when it differs). Error frames
     * and non-healable transport failures throw QuestError; with
     * @p idempotent and a reconnectable client, transport failures
     * reconnect + resend per the backoff schedule first.
     */
    Frame roundTrip(MsgType type, const std::vector<uint8_t> &payload,
                    MsgType expect, MsgType alsoExpect,
                    bool idempotent);

    /** One send + receive on the current socket. Returns false on
     *  a transport failure (socket closed, detail filled). */
    bool attemptRoundTrip(MsgType type,
                          const std::vector<uint8_t> &payload,
                          Frame &out, std::string &detail);

    int sock = -1;
    std::string path;          //!< empty: fromFd, cannot reconnect
    double connectTimeout = 5.0;
    RetryPolicy policy;
};

} // namespace quest::service

#endif // QUEST_SERVICE_CLIENT_HH
