/**
 * @file
 * QSV1 — the compile service's length-prefixed framed wire protocol
 * (docs/FORMATS.md has the normative spec and a worked hex example).
 *
 * One frame is
 *
 *   offset size  field
 *   0      4     magic "QSV1"
 *   4      2     u16 protocol version (currently 1)
 *   6      2     u16 message type (MsgType)
 *   8      4     u32 payload byte length
 *   12     len   payload (a message codec below)
 *   12+len 8     u64 FNV-1a checksum of the payload bytes
 *
 * with every integer little-endian (util/serialize.hh). The payload
 * length is capped (kDefaultMaxPayloadBytes) so a malicious or
 * corrupt length prefix cannot make the server allocate unboundedly.
 * Frames and payloads decode with ByteReader, so malformed input
 * throws SerializeError — the decoder contract shared with the QSC1
 * cache and QRJ1 journal formats. Requests always travel client to
 * server; each earns exactly one reply frame (the matching *Reply
 * type, or Error).
 */

#ifndef QUEST_SERVICE_PROTOCOL_HH
#define QUEST_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "service/job.hh"
#include "util/serialize.hh"

namespace quest::service {

inline constexpr uint8_t kFrameMagic[4] = {'Q', 'S', 'V', '1'};
// Version 2 appended the selection-mode byte to CompileOptions;
// version 3 added the tenant/submission-key strings to Submit, the
// retry-hint fields to SubmitReply, and the Retry frame (bounded
// result waits). An old peer gets a clean version-mismatch error,
// not a garbled decode.
inline constexpr uint16_t kProtocolVersion = 3;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameTrailerBytes = 8;

/** Admission cap on one frame's payload (16 MiB covers any QASM a
 *  single job realistically ships; larger lengths are rejected). */
inline constexpr uint32_t kDefaultMaxPayloadBytes = 16u << 20;

/** Frame types. Requests are odd, their replies even; Error replies
 *  to any request the server could not serve. */
enum class MsgType : uint16_t {
    Submit = 1,
    SubmitReply = 2,
    Status = 3,
    StatusReply = 4,
    Result = 5,
    ResultReply = 6,
    Cancel = 7,
    CancelReply = 8,
    Stats = 9,
    StatsReply = 10,
    Shutdown = 11,
    ShutdownReply = 12,
    Error = 13,
    Retry = 14, //!< reply only: poll again (bounded result wait ran out)
};

/** Stable lower-case name ("submit", "status-reply", ...). */
const char *msgTypeName(MsgType type);

/** One decoded frame: type plus raw payload bytes. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::vector<uint8_t> payload;
};

/** Encode one complete frame (header + payload + checksum). */
std::vector<uint8_t> encodeFrame(MsgType type,
                                 const std::vector<uint8_t> &payload);

/**
 * Decode exactly one frame from @p size bytes at @p data. Throws
 * SerializeError on bad magic, version mismatch, an oversized or
 * truncated payload, a trailing-byte surplus, or a checksum
 * mismatch; the message names the defect.
 */
Frame decodeFrame(const uint8_t *data, size_t size,
                  uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes);

// ---- message payloads --------------------------------------------

/** Submit one compile job. */
struct SubmitRequest
{
    int32_t priority = 0;        //!< higher pops first
    double deadlineSeconds = 0;  //!< per-job wall-clock budget (0 = none)
    CompileOptions options;

    /** Fair-share identity: quotas and weighted round-robin group
     *  jobs by this string. Empty is itself a tenant (the anonymous
     *  one), so untagged clients share one fair-share slot. */
    std::string tenant;

    /**
     * Idempotency key. When non-empty, a resubmit carrying the same
     * (tenant, key) pair returns the already-admitted job instead of
     * running a second copy — a client that lost the connection
     * after the server's Submit ack can blindly retry. Empty
     * disables dedup (every submit is a fresh job).
     */
    std::string submissionKey;

    std::string qasm;            //!< OpenQASM 2.0 source

    void encode(ByteWriter &w) const;
    static SubmitRequest decode(ByteReader &r);
};

struct SubmitReply
{
    uint64_t jobId = 0;    //!< 0 when rejected
    bool accepted = false;
    JobState state = JobState::Rejected;
    std::string detail;    //!< rejection reason when !accepted

    /** True when submissionKey matched an existing job: jobId/state
     *  describe that job and nothing new was enqueued. */
    bool deduplicated = false;

    /** Backoff hint on a shed (quota/queue-full) rejection: seconds
     *  the client should wait before retrying. Deterministic — a
     *  pure function of the tenant's standing load at rejection. */
    double retryAfterSeconds = 0;

    void encode(ByteWriter &w) const;
    static SubmitReply decode(ByteReader &r);
};

struct StatusRequest
{
    uint64_t jobId = 0;

    void encode(ByteWriter &w) const;
    static StatusRequest decode(ByteReader &r);
};

/** One job's externally visible state (also the StatusReply body). */
struct JobStatus
{
    uint64_t jobId = 0;
    bool known = false;          //!< false: the server never saw this id
    JobState state = JobState::Rejected;
    int32_t exitCode = -1;       //!< exitCodeForJobState (terminal only)
    uint32_t queuePosition = 0;  //!< 0-based, Queued only
    uint64_t completionSeq = 0;  //!< 1-based completion order (terminal)
    std::string detail;          //!< failure/cancellation diagnostic

    void encode(ByteWriter &w) const;
    static JobStatus decode(ByteReader &r);
};

struct ResultRequest
{
    uint64_t jobId = 0;
    bool wait = true;           //!< block until the job is terminal
    double timeoutSeconds = 0;  //!< cap on the wait (0 = unbounded)

    void encode(ByteWriter &w) const;
    static ResultRequest decode(ByteReader &r);
};

/** One selected ensemble sample, as QASM text. */
struct SampleResult
{
    std::string qasm;
    uint64_t cnotCount = 0;
    double distanceBound = 0;
};

struct ResultReply
{
    JobStatus status;

    // Summary fields (valid when status.state == Done).
    uint32_t qubits = 0;
    uint64_t originalCnots = 0;
    uint64_t blocks = 0;
    uint64_t okBlocks = 0;
    double threshold = 0;
    std::vector<SampleResult> samples;

    /** Per-job metrics snapshot streamed back at completion: the
     *  process-wide registry's counters/gauges at the moment the job
     *  finished (name, value), sorted by name. */
    std::vector<std::pair<std::string, uint64_t>> metrics;

    void encode(ByteWriter &w) const;
    static ResultReply decode(ByteReader &r);
};

struct CancelRequest
{
    uint64_t jobId = 0;

    void encode(ByteWriter &w) const;
    static CancelRequest decode(ByteReader &r);
};

/** What a cancel request achieved. */
enum class CancelOutcome : uint8_t {
    Unknown = 0,     //!< no such job
    Dequeued = 1,    //!< removed from the queue before it ever ran
    Signalled = 2,   //!< running; its CancelToken has been fired
    AlreadyDone = 3, //!< already terminal; nothing to cancel
};

struct CancelReply
{
    uint64_t jobId = 0;
    CancelOutcome outcome = CancelOutcome::Unknown;

    void encode(ByteWriter &w) const;
    static CancelReply decode(ByteReader &r);
};

/** Server-wide statistics: the metrics registry's counters and
 *  gauges (name, value), sorted by name. */
struct StatsReply
{
    std::vector<std::pair<std::string, uint64_t>> stats;

    void encode(ByteWriter &w) const;
    static StatsReply decode(ByteReader &r);
};

struct ShutdownRequest
{
    bool drain = true; //!< finish queued jobs first vs cancel them

    void encode(ByteWriter &w) const;
    static ShutdownRequest decode(ByteReader &r);
};

/**
 * "Not done yet — ask again." The reply to a `result --wait`
 * request whose job outlived the server's bounded wait
 * (ServerConfig::maxResultWaitSeconds): instead of pinning a
 * connection thread until the job finishes, the server returns the
 * current status plus a retry hint and the client polls again.
 * QuestClient::result() loops on these transparently.
 */
struct RetryReply
{
    JobStatus status;
    double retryAfterSeconds = 0; //!< suggested poll delay (0 = now)

    void encode(ByteWriter &w) const;
    static RetryReply decode(ByteReader &r);
};

/** The server's reply to a request it could not serve. */
struct ErrorReply
{
    int32_t exitCode = 0; //!< PR-5 taxonomy code for the failure
    std::string message;

    void encode(ByteWriter &w) const;
    static ErrorReply decode(ByteReader &r);
};

// ---- payload helpers ---------------------------------------------

template <typename Message>
std::vector<uint8_t>
encodePayload(const Message &message)
{
    ByteWriter w;
    message.encode(w);
    return w.take();
}

/** Decode a whole payload as @p Message; trailing bytes are a
 *  malformed-frame error, like every other length surplus. */
template <typename Message>
Message
decodePayload(const std::vector<uint8_t> &payload)
{
    ByteReader r(payload);
    Message message = Message::decode(r);
    if (!r.atEnd()) {
        throw SerializeError(
            "trailing bytes after message payload: " +
            std::to_string(r.remaining()) + " unread");
    }
    return message;
}

} // namespace quest::service

#endif // QUEST_SERVICE_PROTOCOL_HH
