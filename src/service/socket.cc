#include "service/socket.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "resilience/error.hh"
#include "resilience/fault.hh"
#include "util/names.hh"

namespace quest::service {

namespace {

using Clock = std::chrono::steady_clock;

/** A deadline for one frame's worth of I/O; unset blocks forever. */
struct IoDeadline
{
    bool armed = false;
    Clock::time_point at{};

    static IoDeadline
    in(int ms)
    {
        IoDeadline d;
        if (ms >= 0) {
            d.armed = true;
            d.at = Clock::now() + std::chrono::milliseconds(ms);
        }
        return d;
    }

    bool
    expired() const
    {
        return armed && Clock::now() >= at;
    }

    /** poll(2) timeout argument: remaining ms (≥1) or -1. */
    int
    pollMs() const
    {
        if (!armed)
            return -1;
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(at - Clock::now());
        return std::max<int>(1, static_cast<int>(left.count()) + 1);
    }
};

/** How one bounded read attempt ended. */
enum class IoOutcome { Ok, Eof, Error, Stalled };

/**
 * Read exactly @p n bytes under @p deadline. Ok fills the buffer;
 * Eof is a clean close before the first byte *of this call*
 * (@p got says how many arrived); Stalled is the deadline firing
 * with the read incomplete.
 */
IoOutcome
readExact(int fd, uint8_t *buf, size_t n, const IoDeadline &deadline,
          size_t &got)
{
    got = 0;
    while (got < n) {
        if (deadline.expired())
            return IoOutcome::Stalled;
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, deadline.pollMs());
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return IoOutcome::Error;
        }
        if (ready == 0)
            continue; // poll timeout: loop re-checks the deadline
        const ssize_t r = ::recv(fd, buf + got, n - got, MSG_DONTWAIT);
        if (r > 0) {
            got += static_cast<size_t>(r);
            continue;
        }
        if (r == 0)
            return IoOutcome::Eof;
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        return IoOutcome::Error;
    }
    return IoOutcome::Ok;
}

uint16_t
le16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] |
                                 (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t
le32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
le64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

RecvResult
fail(RecvStatus status, std::string error)
{
    RecvResult r;
    r.status = status;
    r.error = std::move(error);
    return r;
}

} // namespace

RecvResult
recvFrame(int fd, uint32_t maxPayloadBytes, SocketTimeouts timeouts)
{
    // The first header byte is the idle/active boundary: waiting for
    // it is bounded by the idle deadline (a silent connection is
    // reaped), everything after it by the per-frame I/O deadline (a
    // dribbling peer is a slowloris stall).
    uint8_t header[kFrameHeaderBytes];
    size_t got = 0;
    switch (readExact(fd, header, 1, IoDeadline::in(timeouts.idleMs),
                      got)) {
      case IoOutcome::Ok:
        break;
      case IoOutcome::Eof:
        return fail(RecvStatus::Eof, "connection closed");
      case IoOutcome::Stalled:
        return fail(RecvStatus::Idle,
                    "no frame started within the idle deadline");
      case IoOutcome::Error:
        return fail(RecvStatus::IoError,
                    std::string("read failed: ") +
                        std::strerror(errno));
    }

    const IoDeadline frameDeadline = IoDeadline::in(timeouts.ioMs);
    switch (readExact(fd, header + 1, sizeof header - 1,
                      frameDeadline, got)) {
      case IoOutcome::Ok:
        break;
      case IoOutcome::Eof:
        return fail(RecvStatus::Malformed, "truncated frame header");
      case IoOutcome::Stalled:
        return fail(RecvStatus::Stalled,
                    "frame header stalled past the I/O deadline");
      case IoOutcome::Error:
        return fail(RecvStatus::IoError,
                    std::string("read failed: ") +
                        std::strerror(errno));
    }

    if (QUEST_FAULT_POINT(names::kFaultServiceRecvStall)) {
        // Simulated slowloris: the peer framed a header, then went
        // quiet until the I/O deadline fired.
        return fail(RecvStatus::Stalled,
                    "injected mid-frame stall (service.recv.stall)");
    }

    if (std::memcmp(header, kFrameMagic, sizeof kFrameMagic) != 0)
        return fail(RecvStatus::Malformed,
                    "bad frame magic (want \"QSV1\")");
    const uint16_t version = le16(header + 4);
    if (version != kProtocolVersion) {
        return fail(RecvStatus::VersionMismatch,
                    "protocol version mismatch: got " +
                        std::to_string(version) +
                        ", this peer speaks " +
                        std::to_string(kProtocolVersion));
    }
    const uint16_t type = le16(header + 6);
    const uint32_t length = le32(header + 8);
    if (length > maxPayloadBytes) {
        return fail(RecvStatus::Oversized,
                    "oversized frame payload: " +
                        std::to_string(length) + " bytes exceeds the " +
                        std::to_string(maxPayloadBytes) + "-byte cap");
    }

    std::vector<uint8_t> body(static_cast<size_t>(length) +
                              kFrameTrailerBytes);
    switch (readExact(fd, body.data(), body.size(), frameDeadline,
                      got)) {
      case IoOutcome::Ok:
        break;
      case IoOutcome::Eof:
        return fail(RecvStatus::Malformed,
                    "torn frame: payload cut short by connection "
                    "close");
      case IoOutcome::Stalled:
        return fail(RecvStatus::Stalled,
                    "frame payload stalled past the I/O deadline");
      case IoOutcome::Error:
        return fail(RecvStatus::IoError,
                    std::string("read failed: ") +
                        std::strerror(errno));
    }

    const uint64_t want = le64(body.data() + length);
    const uint64_t got_sum = fnv1a64(body.data(), length);
    if (want != got_sum)
        return fail(RecvStatus::Malformed,
                    "frame payload checksum mismatch");

    RecvResult result;
    result.status = RecvStatus::Ok;
    result.frame.type = static_cast<MsgType>(type);
    result.frame.payload.assign(body.begin(),
                                body.begin() + length);
    return result;
}

SendStatus
sendExact(int fd, const uint8_t *data, size_t n, int ioTimeoutMs)
{
    const IoDeadline deadline = IoDeadline::in(ioTimeoutMs);
    size_t sent = 0;
    while (sent < n) {
        if (deadline.expired())
            return SendStatus::Stalled;
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, deadline.pollMs());
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return SendStatus::Error;
        }
        if (ready == 0)
            continue; // poll timeout: loop re-checks the deadline
        const ssize_t w = ::send(fd, data + sent, n - sent,
                                 MSG_NOSIGNAL | MSG_DONTWAIT);
        if (w > 0) {
            sent += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK))
            continue;
        return SendStatus::Error;
    }
    return SendStatus::Ok;
}

SendStatus
sendFrame(int fd, MsgType type, const std::vector<uint8_t> &payload,
          int ioTimeoutMs)
{
    if (QUEST_FAULT_POINT(names::kFaultServiceWrite)) {
        // Simulated torn write: drop the connection.
        return SendStatus::Error;
    }
    const std::vector<uint8_t> frame = encodeFrame(type, payload);
    return sendExact(fd, frame.data(), frame.size(), ioTimeoutMs);
}

Listener::Listener(const std::string &path) : sockPath(path)
{
    using resilience::ErrorCategory;
    using resilience::QuestError;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        throw QuestError(ErrorCategory::InvalidInput,
                         "socket path too long (" +
                             std::to_string(path.size()) + " > " +
                             std::to_string(sizeof addr.sun_path - 1) +
                             "): " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        throw QuestError(ErrorCategory::Io,
                         std::string("socket: ") +
                             std::strerror(errno));
    }
    ::unlink(path.c_str()); // stale socket from a killed daemon
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        const std::string what = std::strerror(errno);
        ::close(fd);
        fd = -1;
        throw QuestError(ErrorCategory::Io,
                         "cannot listen on '" + path + "': " + what);
    }
}

Listener::~Listener()
{
    close();
}

int
Listener::acceptConnection(int timeoutMs)
{
    if (fd < 0)
        return -1;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeoutMs);
    if (ready <= 0)
        return -1; // timeout, EINTR, or poll error: caller re-polls
    const int conn = ::accept4(fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0)
        return -1;
    if (QUEST_FAULT_POINT(names::kFaultServiceAccept)) {
        // Simulated accept failure: the client sees its fresh
        // connection drop and may retry; the daemon carries on.
        ::close(conn);
        return -1;
    }
    return conn;
}

void
Listener::close()
{
    if (fd < 0)
        return;
    ::close(fd);
    fd = -1;
    ::unlink(sockPath.c_str());
}

int
connectTo(const std::string &path, double timeoutSeconds)
{
    using resilience::ErrorCategory;
    using resilience::QuestError;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        throw QuestError(ErrorCategory::InvalidInput,
                         "socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const auto give_up =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeoutSeconds));
    std::string last_error = "timed out";
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            throw QuestError(ErrorCategory::Io,
                             std::string("socket: ") +
                                 std::strerror(errno));
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0) {
            return fd;
        }
        last_error = std::strerror(errno);
        ::close(fd);
        if (std::chrono::steady_clock::now() >= give_up)
            break;
        // The daemon may still be binding; retry shortly.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    throw QuestError(ErrorCategory::Io, "cannot connect to '" + path +
                                            "': " + last_error);
}

} // namespace quest::service
