/**
 * @file
 * Structural IR verification passes.
 *
 * QUEST's correctness argument (the Sec. 3.8 bound) silently assumes
 * a set of IR invariants: gate wires stay in range, arities match the
 * gate type, rotation angles are finite, lowered circuits contain
 * only native {U3, CX} gates, and a partition covers the original
 * gate sequence exactly once with consistent wire mappings. The
 * verifiers here lint those invariants so pipeline stages (and the
 * quest_lint tool) can check their inputs and outputs instead of
 * assuming them.
 */

#ifndef QUEST_VERIFY_VERIFIER_HH
#define QUEST_VERIFY_VERIFIER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "ir/circuit.hh"
#include "partition/scan_partitioner.hh"

namespace quest {

/** One structural defect found by a verifier. */
struct VerifyIssue
{
    /** gateIndex value for circuit- or block-level issues. */
    static constexpr size_t noIndex = static_cast<size_t>(-1);

    size_t gateIndex = noIndex; //!< offending gate, or noIndex
    std::string message;

    /** "gate 12: <message>" or just "<message>". */
    std::string toString() const;
};

/** The outcome of a verification pass. */
struct VerifyReport
{
    std::vector<VerifyIssue> issues;

    bool ok() const { return issues.empty(); }

    /** One line per issue; empty string when ok. */
    std::string toString() const;
};

/** CircuitVerifier settings. */
struct CircuitVerifyOptions
{
    /** Require the native {U3, CX} gate set (Measure still allowed,
     *  matching isNative()). */
    bool requireNative = false;

    /** Permit Barrier/Measure pseudo-ops at all. Partition blocks
     *  and synthesis candidates must be pseudo-op free. */
    bool allowPseudoOps = true;

    /** Stop collecting after this many issues. */
    size_t maxIssues = 64;
};

/**
 * Structural circuit linter. Checks, per gate: wire indices in
 * [0, numQubits), arity matching the GateType (Barrier: >= 1),
 * distinct wires (CX control != target), parameter count matching
 * the GateType, finite parameter values; and, per circuit: a
 * positive wire count, measurements only as a trailing suffix, at
 * most one measurement per wire, and (optionally) native-gate-set
 * conformance.
 */
class CircuitVerifier
{
  public:
    explicit CircuitVerifier(CircuitVerifyOptions options = {});

    VerifyReport verify(const Circuit &circuit) const;

  private:
    CircuitVerifyOptions opts;
};

/**
 * Checks that a block list is a faithful partition of a circuit:
 * every block's wire mapping is sorted, duplicate-free and in range
 * with a matching block width; every block circuit is structurally
 * valid and pseudo-op free; and the blocks, replayed in order
 * through their wire maps, cover the original's non-barrier gate
 * sequence exactly once, preserving the per-wire gate order (the
 * partitioner may interleave commuting gates across blocks, so the
 * global order is compared wire by wire).
 */
class PartitionVerifier
{
  public:
    /** @param max_block_size width limit to enforce (0: unlimited). */
    explicit PartitionVerifier(int max_block_size = 0);

    VerifyReport verify(const Circuit &original,
                        const std::vector<Block> &blocks) const;

  private:
    int maxBlockSize;
};

/**
 * Verify a circuit and panic with the full report on failure;
 * @p context names the producing stage in the panic message.
 */
void verifyOrPanic(const Circuit &circuit,
                   const CircuitVerifyOptions &options,
                   const std::string &context);

/** Partition-checking variant of verifyOrPanic. */
void verifyOrPanic(const Circuit &original,
                   const std::vector<Block> &blocks, int max_block_size,
                   const std::string &context);

} // namespace quest

#endif // QUEST_VERIFY_VERIFIER_HH
