#include "verify/verifier.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace quest {

namespace {

/** Append an issue unless the report is already at its cap. */
void
pushIssue(VerifyReport &report, size_t cap, size_t gate_index,
          std::string message)
{
    if (report.issues.size() >= cap)
        return;
    report.issues.push_back({gate_index, std::move(message)});
}

bool
isPseudoOp(GateType type)
{
    return type == GateType::Barrier || type == GateType::Measure;
}

/** A gate of the original circuit with its partition-mapped twin. */
struct MappedGate
{
    GateType type;
    std::vector<int> qubits; //!< global circuit wires
    std::vector<double> params;
    size_t blockIndex;       //!< producing block (noIndex: original)

    bool
    sameOperation(const MappedGate &other) const
    {
        return type == other.type && qubits == other.qubits &&
               params == other.params;
    }

    /** Renders without constructing a Gate (whose constructor
     *  asserts well-formedness this pass cannot assume). */
    std::string
    toString() const
    {
        std::ostringstream os;
        os << gateName(type);
        if (!params.empty()) {
            os << "(";
            for (size_t i = 0; i < params.size(); ++i)
                os << (i ? "," : "") << params[i];
            os << ")";
        }
        os << " ";
        for (size_t i = 0; i < qubits.size(); ++i)
            os << (i ? "," : "") << "q[" << qubits[i] << "]";
        os << ";";
        return os.str();
    }
};

} // namespace

std::string
VerifyIssue::toString() const
{
    if (gateIndex == noIndex)
        return message;
    std::ostringstream os;
    os << "gate " << gateIndex << ": " << message;
    return os.str();
}

std::string
VerifyReport::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < issues.size(); ++i) {
        if (i)
            os << "\n";
        os << issues[i].toString();
    }
    return os.str();
}

CircuitVerifier::CircuitVerifier(CircuitVerifyOptions options)
    : opts(options)
{
    QUEST_ASSERT(opts.maxIssues >= 1, "issue cap must be positive");
}

VerifyReport
CircuitVerifier::verify(const Circuit &circuit) const
{
    VerifyReport report;
    const size_t cap = opts.maxIssues;
    const int n = circuit.numQubits();

    if (n <= 0) {
        pushIssue(report, cap, VerifyIssue::noIndex,
                  "circuit has no wires (default-constructed?)");
        return report;
    }

    std::vector<bool> measured(static_cast<size_t>(n), false);
    bool in_measurement_suffix = false;

    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        const std::string rendered = g.toString();

        // Arity: Barrier is variadic (>= 1 wire); everything else
        // must match its GateType exactly.
        const int arity = g.arity();
        if (g.type == GateType::Barrier) {
            if (arity < 1) {
                pushIssue(report, cap, i, "barrier with no wires");
            }
        } else if (arity != gateArity(g.type)) {
            pushIssue(report, cap, i,
                      detail::concat(rendered, " — arity ", arity,
                                     " does not match ",
                                     gateName(g.type), "'s arity of ",
                                     gateArity(g.type)));
        }

        // Wires: in range and pairwise distinct (a CX whose control
        // equals its target is the canonical corruption).
        bool wires_in_range = true;
        for (int q : g.qubits) {
            if (q < 0 || q >= n) {
                wires_in_range = false;
                pushIssue(report, cap, i,
                          detail::concat(rendered, " — wire ", q,
                                         " outside circuit of ", n,
                                         " qubits"));
            }
        }
        for (size_t a = 0; a < g.qubits.size(); ++a) {
            for (size_t b = a + 1; b < g.qubits.size(); ++b) {
                if (g.qubits[a] == g.qubits[b]) {
                    pushIssue(report, cap, i,
                              detail::concat(rendered,
                                             " — duplicate wire ",
                                             g.qubits[a]));
                }
            }
        }

        // Parameters: correct count, all finite.
        if (static_cast<int>(g.params.size()) !=
            gateParamCount(g.type)) {
            pushIssue(report, cap, i,
                      detail::concat(rendered, " — ", g.params.size(),
                                     " parameters; ", gateName(g.type),
                                     " takes ",
                                     gateParamCount(g.type)));
        }
        for (double p : g.params) {
            if (!std::isfinite(p)) {
                pushIssue(report, cap, i,
                          detail::concat(rendered,
                                         " — non-finite parameter"));
                break;
            }
        }

        // Gate-set restrictions.
        if (!opts.allowPseudoOps && isPseudoOp(g.type)) {
            pushIssue(report, cap, i,
                      detail::concat(rendered,
                                     " — pseudo-op not allowed here"));
        }
        if (opts.requireNative && g.type != GateType::U3 &&
            g.type != GateType::CX && g.type != GateType::Measure) {
            pushIssue(report, cap, i,
                      detail::concat(rendered, " — ", gateName(g.type),
                                     " outside the native {u3, cx} "
                                     "set"));
        }

        // Measurement discipline: measurements form a trailing
        // suffix (unitary construction ignores them, so a gate after
        // a measurement would silently reorder), and each wire is
        // measured at most once.
        if (g.type == GateType::Measure) {
            in_measurement_suffix = true;
            const int q = g.qubits.empty() ? -1 : g.qubits[0];
            if (wires_in_range && q >= 0) {
                if (measured[static_cast<size_t>(q)]) {
                    pushIssue(report, cap, i,
                              detail::concat(rendered,
                                             " — wire ", q,
                                             " measured twice"));
                }
                measured[static_cast<size_t>(q)] = true;
            }
        } else if (in_measurement_suffix &&
                   g.type != GateType::Barrier) {
            pushIssue(report, cap, i,
                      detail::concat(rendered,
                                     " — gate after a measurement "
                                     "(measurements must be a "
                                     "trailing suffix)"));
        }
    }

    return report;
}

PartitionVerifier::PartitionVerifier(int max_block_size)
    : maxBlockSize(max_block_size)
{
    QUEST_ASSERT(max_block_size >= 0, "negative block-size limit");
}

VerifyReport
PartitionVerifier::verify(const Circuit &original,
                          const std::vector<Block> &blocks) const
{
    VerifyReport report;
    constexpr size_t cap = 64;
    const int n = original.numQubits();

    if (n <= 0) {
        pushIssue(report, cap, VerifyIssue::noIndex,
                  "original circuit has no wires");
        return report;
    }
    if (original.hasMeasurements()) {
        pushIssue(report, cap, VerifyIssue::noIndex,
                  "partition input contains measurements");
        return report;
    }

    // Pass 1: each block's wire mapping and local circuit.
    CircuitVerifier block_verifier({.requireNative = false,
                                    .allowPseudoOps = false,
                                    .maxIssues = cap});
    bool mappings_ok = true;
    for (size_t b = 0; b < blocks.size(); ++b) {
        const Block &block = blocks[b];
        const auto prefix = [b](const std::string &msg) {
            return detail::concat("block ", b, ": ", msg);
        };

        bool this_ok = true;
        if (block.qubits.empty()) {
            pushIssue(report, cap, VerifyIssue::noIndex,
                      prefix("empty wire mapping"));
            this_ok = false;
        }
        for (size_t i = 0; i < block.qubits.size(); ++i) {
            const int q = block.qubits[i];
            if (q < 0 || q >= n) {
                pushIssue(report, cap, VerifyIssue::noIndex,
                          prefix(detail::concat(
                              "mapped wire ", q,
                              " outside circuit of ", n, " qubits")));
                this_ok = false;
            }
            if (i > 0 && block.qubits[i - 1] >= q) {
                pushIssue(report, cap, VerifyIssue::noIndex,
                          prefix("wire mapping not strictly "
                                 "ascending"));
                this_ok = false;
            }
        }
        if (block.circuit.numQubits() != block.width()) {
            pushIssue(report, cap, VerifyIssue::noIndex,
                      prefix(detail::concat(
                          "circuit spans ",
                          block.circuit.numQubits(),
                          " wires but the mapping lists ",
                          block.width())));
            this_ok = false;
        }
        if (maxBlockSize > 0 && block.width() > maxBlockSize) {
            pushIssue(report, cap, VerifyIssue::noIndex,
                      prefix(detail::concat("width ", block.width(),
                                            " exceeds the limit of ",
                                            maxBlockSize)));
        }

        VerifyReport local = block_verifier.verify(block.circuit);
        for (const VerifyIssue &issue : local.issues) {
            pushIssue(report, cap, issue.gateIndex,
                      prefix(issue.message));
            this_ok = false;
        }
        mappings_ok &= this_ok;
    }

    // Coverage needs trustworthy mappings; bail out if any is broken.
    if (!mappings_ok)
        return report;

    // Pass 2: the blocks, replayed in order, must cover the
    // original's non-barrier gates exactly once. The partitioner is
    // free to interleave commuting gates across blocks, so compare
    // the gate sequence seen by each wire rather than the global
    // order (identical per-wire sequences pin down the circuit DAG).
    std::vector<MappedGate> original_gates, partition_gates;
    for (const Gate &g : original) {
        if (g.type == GateType::Barrier)
            continue;
        original_gates.push_back(
            {g.type, g.qubits, g.params, VerifyIssue::noIndex});
    }
    for (size_t b = 0; b < blocks.size(); ++b) {
        for (const Gate &g : blocks[b].circuit) {
            std::vector<int> mapped = g.qubits;
            for (int &q : mapped)
                q = blocks[b].qubits[static_cast<size_t>(q)];
            partition_gates.push_back(
                {g.type, std::move(mapped), g.params, b});
        }
    }

    if (original_gates.size() != partition_gates.size()) {
        pushIssue(report, cap, VerifyIssue::noIndex,
                  detail::concat("blocks hold ", partition_gates.size(),
                                 " gates; the original has ",
                                 original_gates.size()));
    }

    std::vector<std::vector<const MappedGate *>> original_by_wire(
        static_cast<size_t>(n));
    std::vector<std::vector<const MappedGate *>> partition_by_wire(
        static_cast<size_t>(n));
    for (const MappedGate &g : original_gates)
        for (int q : g.qubits)
            original_by_wire[static_cast<size_t>(q)].push_back(&g);
    for (const MappedGate &g : partition_gates)
        for (int q : g.qubits)
            partition_by_wire[static_cast<size_t>(q)].push_back(&g);

    for (int q = 0; q < n; ++q) {
        const auto &orig = original_by_wire[static_cast<size_t>(q)];
        const auto &part = partition_by_wire[static_cast<size_t>(q)];
        const size_t common = std::min(orig.size(), part.size());
        for (size_t i = 0; i < common; ++i) {
            if (!orig[i]->sameOperation(*part[i])) {
                pushIssue(report, cap, VerifyIssue::noIndex,
                          detail::concat(
                              "wire ", q, ", position ", i,
                              ": original has ", orig[i]->toString(),
                              " but block ", part[i]->blockIndex,
                              " contributes ", part[i]->toString()));
                break;
            }
        }
        if (orig.size() != part.size()) {
            pushIssue(report, cap, VerifyIssue::noIndex,
                      detail::concat("wire ", q, ": original has ",
                                     orig.size(),
                                     " gates but the blocks "
                                     "contribute ",
                                     part.size()));
        }
    }

    return report;
}

void
verifyOrPanic(const Circuit &circuit,
              const CircuitVerifyOptions &options,
              const std::string &context)
{
    VerifyReport report = CircuitVerifier(options).verify(circuit);
    if (!report.ok()) {
        QUEST_PANIC("circuit verification failed (", context, "):\n",
                    report.toString());
    }
}

void
verifyOrPanic(const Circuit &original, const std::vector<Block> &blocks,
              int max_block_size, const std::string &context)
{
    VerifyReport report =
        PartitionVerifier(max_block_size).verify(original, blocks);
    if (!report.ok()) {
        QUEST_PANIC("partition verification failed (", context, "):\n",
                    report.toString());
    }
}

} // namespace quest
