#include "algos/algorithms.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace quest::algos {

Circuit
hlf(int n_qubits, uint64_t seed)
{
    QUEST_ASSERT(n_qubits >= 2, "hlf needs at least two qubits");
    Rng rng(seed);

    Circuit c(n_qubits);
    for (int q = 0; q < n_qubits; ++q)
        c.append(Gate::h(q));

    // Random symmetric adjacency matrix A: CZ for off-diagonal ones,
    // S for diagonal ones (Bravyi-Gosset-Koenig shallow circuit).
    for (int i = 0; i < n_qubits; ++i) {
        for (int j = i + 1; j < n_qubits; ++j) {
            if (rng.bernoulli(0.5))
                c.append(Gate::cz(i, j));
        }
    }
    for (int i = 0; i < n_qubits; ++i) {
        if (rng.bernoulli(0.5))
            c.append(Gate::s(i));
    }

    for (int q = 0; q < n_qubits; ++q)
        c.append(Gate::h(q));
    return c;
}

} // namespace quest::algos
