/**
 * @file
 * Benchmark circuit generators (Table 1 of the paper).
 *
 * Every generator returns an un-lowered circuit; callers lower to the
 * native {U3, CX} set with lowerToNative() to obtain the Baseline
 * circuit whose CNOT count the paper reports against.
 */

#ifndef QUEST_ALGOS_ALGORITHMS_HH
#define QUEST_ALGOS_ALGORITHMS_HH

#include <functional>
#include <string>
#include <vector>

#include "ir/circuit.hh"

namespace quest::algos {

/**
 * Cuccaro ripple-carry adder [Cuccaro et al. 2004].
 *
 * Wires: carry-in, a-register (k bits), b-register (k bits),
 * carry-out, so n_qubits = 2k + 2 (n_qubits >= 4, even). Input values
 * are loaded with X gates so the circuit computes a fixed nontrivial
 * sum.
 */
Circuit adder(int n_qubits);

/**
 * Array multiplier: registers a (k), b (k) and product (2k) with
 * n_qubits = 4k; partial products via Toffoli gates and ripple
 * carries.
 */
Circuit multiplier(int n_qubits);

/** Quantum Fourier transform with final swaps. */
Circuit qft(int n_qubits);

/**
 * Hidden linear function circuit [Bravyi et al. 2018] for a random
 * symmetric adjacency matrix drawn from @p seed: H^n, CZ on edges,
 * S on diagonal entries, H^n.
 */
Circuit hlf(int n_qubits, uint64_t seed = 7);

/**
 * QAOA MaxCut ansatz [Farhi & Harrow 2016] on a ring plus seeded
 * random chords, with @p rounds (gamma, beta) layers at fixed angles.
 */
Circuit qaoa(int n_qubits, int rounds = 1, uint64_t seed = 11);

/**
 * Hardware-efficient VQE ansatz [McClean et al. 2016]: layers of RY
 * and RZ rotations with a linear CX entangler, parameters drawn from
 * @p seed.
 */
Circuit vqe(int n_qubits, int layers = 2, uint64_t seed = 13);

/**
 * Trotterized transverse-field Ising model evolution (z-coupling
 * only), following ArQTiC [Bassman et al. 2021]:
 * H = -J sum Z_i Z_{i+1} - h sum X_i, first-order Trotter with
 * @p steps steps of size @p dt (dimensionless simulated time per
 * step); @p coupling is J and @p field is h in the same units.
 */
Circuit tfim(int n_spins, int steps, double dt = 0.1, double coupling = 1.0,
             double field = 1.0);

/**
 * Trotterized Heisenberg evolution (x, y and z couplings plus
 * transverse field).
 */
Circuit heisenberg(int n_spins, int steps, double dt = 0.1,
                   double coupling = 1.0, double field = 1.0);

/** Trotterized XY-model evolution (x and y couplings). */
Circuit xy(int n_spins, int steps, double dt = 0.1, double coupling = 1.0,
           double field = 1.0);

/** A named benchmark instance in the evaluation suite. */
struct BenchmarkSpec
{
    std::string name;      //!< stable id, e.g. "tfim_4" (quest_gen)
    int nQubits;           //!< circuit width in qubits
    std::function<Circuit()> build; //!< deterministic generator
};

/**
 * The evaluation suite used by the Fig. 8/9 benches: one instance of
 * each Table-1 algorithm at the paper's small-to-medium sizes.
 */
std::vector<BenchmarkSpec> standardSuite();

/** The subset of the suite that fits on a 5-qubit device (Fig. 10). */
std::vector<BenchmarkSpec> manilaSuite();

/**
 * The 64/96/128-qubit scaling suite (TFIM, QAOA and adder at each
 * width) for the QGo-style block-only `--large` pipeline mode —
 * far past what statevector simulation or SelectionMode::Full can
 * reach. Used by bench/scaling.cc and exported by quest_gen.
 */
std::vector<BenchmarkSpec> largeSuite();

/** Find a spec by name in @p suite (panics if absent). */
const BenchmarkSpec &findSpec(const std::vector<BenchmarkSpec> &suite,
                              const std::string &name);

} // namespace quest::algos

#endif // QUEST_ALGOS_ALGORITHMS_HH
