#include "algos/algorithms.hh"

#include <numbers>

#include "util/logging.hh"

namespace quest::algos {

Circuit
qft(int n_qubits)
{
    QUEST_ASSERT(n_qubits >= 1, "qft needs at least one qubit");
    constexpr double pi = std::numbers::pi;

    Circuit c(n_qubits);

    // Prepare a nontrivial input so the output distribution is not a
    // delta (the paper's input files encode a fixed basis state).
    for (int q = 0; q < n_qubits; q += 2)
        c.append(Gate::x(q));

    for (int i = 0; i < n_qubits; ++i) {
        c.append(Gate::h(i));
        for (int j = i + 1; j < n_qubits; ++j) {
            double angle = pi / static_cast<double>(1 << (j - i));
            c.append(Gate::cp(j, i, angle));
        }
    }
    for (int i = 0; i < n_qubits / 2; ++i)
        c.append(Gate::swap(i, n_qubits - 1 - i));
    return c;
}

} // namespace quest::algos
