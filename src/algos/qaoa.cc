#include "algos/algorithms.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace quest::algos {

Circuit
qaoa(int n_qubits, int rounds, uint64_t seed)
{
    QUEST_ASSERT(n_qubits >= 3, "qaoa needs at least three qubits");
    QUEST_ASSERT(rounds >= 1, "qaoa needs at least one round");
    Rng rng(seed);

    // MaxCut instance: ring edges plus ~n/2 random chords. A qubit
    // coupling to a rotating set of partners is exactly the
    // hard-to-partition structure the paper calls out for QAOA.
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n_qubits; ++i)
        edges.emplace_back(i, (i + 1) % n_qubits);
    for (int extra = 0; extra < n_qubits / 2; ++extra) {
        int a = static_cast<int>(rng.uniformInt(n_qubits));
        int b = static_cast<int>(rng.uniformInt(n_qubits));
        if (a == b || (b == (a + 1) % n_qubits) ||
            (a == (b + 1) % n_qubits)) {
            continue;
        }
        edges.emplace_back(a, b);
    }

    Circuit c(n_qubits);
    for (int q = 0; q < n_qubits; ++q)
        c.append(Gate::h(q));

    for (int r = 0; r < rounds; ++r) {
        double gamma = 0.4 + 0.3 * r;
        double beta = 0.7 - 0.2 * r;
        for (auto [a, b] : edges)
            c.append(Gate::rzz(a, b, 2.0 * gamma));
        for (int q = 0; q < n_qubits; ++q)
            c.append(Gate::rx(q, 2.0 * beta));
    }
    return c;
}

} // namespace quest::algos
