#include "algos/algorithms.hh"

#include "util/logging.hh"

namespace quest::algos {

namespace {

/** MAJ block of the Cuccaro adder. */
void
maj(Circuit &c, int carry, int b, int a)
{
    c.append(Gate::cx(a, b));
    c.append(Gate::cx(a, carry));
    c.append(Gate::ccx(carry, b, a));
}

/** UMA (unmajority-and-add) block. */
void
uma(Circuit &c, int carry, int b, int a)
{
    c.append(Gate::ccx(carry, b, a));
    c.append(Gate::cx(a, carry));
    c.append(Gate::cx(carry, b));
}

} // namespace

Circuit
adder(int n_qubits)
{
    QUEST_ASSERT(n_qubits >= 4 && n_qubits % 2 == 0,
                 "adder needs an even qubit count >= 4, got ", n_qubits);
    const int k = (n_qubits - 2) / 2;

    // Layout: q[0] = carry-in, q[1..k] = a (LSB first),
    // q[k+1..2k] = b (LSB first), q[2k+1] = carry-out.
    Circuit c(n_qubits);
    auto a_wire = [&](int i) { return 1 + i; };
    auto b_wire = [&](int i) { return 1 + k + i; };
    const int cin = 0;
    const int cout = 2 * k + 1;

    // Load fixed inputs a = 0b10101..., b = 0b110110... (truncated).
    for (int i = 0; i < k; ++i) {
        if (i % 2 == 0)
            c.append(Gate::x(a_wire(i)));
        if (i % 3 != 2)
            c.append(Gate::x(b_wire(i)));
    }

    // Ripple the carry up through MAJ blocks.
    maj(c, cin, b_wire(0), a_wire(0));
    for (int i = 1; i < k; ++i)
        maj(c, a_wire(i - 1), b_wire(i), a_wire(i));

    // Copy the final carry into the carry-out wire.
    c.append(Gate::cx(a_wire(k - 1), cout));

    // Undo the ripple with UMA blocks, leaving the sum in b.
    for (int i = k - 1; i >= 1; --i)
        uma(c, a_wire(i - 1), b_wire(i), a_wire(i));
    uma(c, cin, b_wire(0), a_wire(0));

    return c;
}

} // namespace quest::algos
