#include "algos/algorithms.hh"

#include "util/logging.hh"

namespace quest::algos {

Circuit
multiplier(int n_qubits)
{
    QUEST_ASSERT(n_qubits >= 4 && n_qubits % 4 == 0,
                 "multiplier needs a multiple of four qubits, got ",
                 n_qubits);
    const int k = n_qubits / 4;

    // Layout: a (k wires), b (k wires), product (2k - 1 wires, LSB
    // first), one ancilla for partial-product bits. The product is
    // computed modulo 2^(2k - 1); carries beyond one position are
    // dropped when they collide, which cannot happen for the default
    // operands below.
    Circuit c(n_qubits);
    auto a_wire = [&](int i) { return i; };
    auto b_wire = [&](int i) { return k + i; };
    auto p_wire = [&](int i) { return 2 * k + i; };
    const int anc = 4 * k - 1;
    const int p_bits = 2 * k - 1;

    // Load fixed inputs a = 0b11..., b = 0b...0101.
    for (int i = 0; i < k; ++i) {
        c.append(Gate::x(a_wire(i)));
        if (i % 2 == 0)
            c.append(Gate::x(b_wire(i)));
    }

    // Schoolbook partial products: for each (i, j), add the bit
    // a_i AND b_j into p[i + j] with a one-level carry:
    //   anc = a_i b_j; p[t+1] ^= anc p[t]; p[t] ^= anc; uncompute.
    for (int i = 0; i < k; ++i) {
        for (int j = 0; j < k; ++j) {
            const int t = i + j;
            if (t >= p_bits)
                continue;
            c.append(Gate::ccx(a_wire(i), b_wire(j), anc));
            if (t + 1 < p_bits)
                c.append(Gate::ccx(anc, p_wire(t), p_wire(t + 1)));
            c.append(Gate::cx(anc, p_wire(t)));
            c.append(Gate::ccx(a_wire(i), b_wire(j), anc));
        }
    }

    return c;
}

} // namespace quest::algos
