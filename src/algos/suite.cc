#include "algos/algorithms.hh"

#include "util/logging.hh"

namespace quest::algos {

std::vector<BenchmarkSpec>
standardSuite()
{
    // One instance of each Table-1 algorithm at sizes comparable to
    // the paper's 4-8 qubit configurations (where noisy simulation
    // and direct validation are tractable), plus a couple of larger
    // instances for scaling figures.
    std::vector<BenchmarkSpec> suite;
    suite.push_back({"adder_4", 4, []() { return adder(4); }});
    suite.push_back({"heisenberg_4", 4, []() {
        return heisenberg(4, 5);
    }});
    suite.push_back({"heisenberg_8", 8, []() {
        return heisenberg(8, 5);
    }});
    suite.push_back({"hlf_4", 4, []() { return hlf(4); }});
    suite.push_back({"qft_4", 4, []() { return qft(4); }});
    suite.push_back({"qft_5", 5, []() { return qft(5); }});
    suite.push_back({"qaoa_5", 5, []() { return qaoa(5); }});
    suite.push_back({"mult_8", 8, []() { return multiplier(8); }});
    suite.push_back({"tfim_4", 4, []() { return tfim(4, 10); }});
    suite.push_back({"tfim_8", 8, []() { return tfim(8, 10); }});
    suite.push_back({"vqe_4", 4, []() { return vqe(4, 4); }});
    suite.push_back({"vqe_5", 5, []() { return vqe(5, 3); }});
    suite.push_back({"xy_4", 4, []() { return xy(4, 5); }});
    return suite;
}

std::vector<BenchmarkSpec>
manilaSuite()
{
    std::vector<BenchmarkSpec> suite;
    for (auto &spec : standardSuite())
        if (spec.nQubits <= 5)
            suite.push_back(spec);
    return suite;
}

std::vector<BenchmarkSpec>
largeSuite()
{
    // The scaling suite: three algorithm families whose structure
    // stays block-friendly at width — Trotterized TFIM (repeated
    // identical blocks, the best case for synthesis dedup), QAOA
    // MaxCut (seeded random chords, the adversarial case), and the
    // Cuccaro adder (deep sequential carries). All widths are even,
    // as adder() requires.
    std::vector<BenchmarkSpec> suite;
    for (int n : {64, 96, 128}) {
        const std::string w = std::to_string(n);
        suite.push_back({"tfim_" + w, n, [n]() {
            return tfim(n, 10);
        }});
        suite.push_back({"qaoa_" + w, n, [n]() {
            return qaoa(n, 2);
        }});
        suite.push_back({"adder_" + w, n, [n]() {
            return adder(n);
        }});
    }
    return suite;
}

const BenchmarkSpec &
findSpec(const std::vector<BenchmarkSpec> &suite, const std::string &name)
{
    for (const auto &spec : suite)
        if (spec.name == name)
            return spec;
    QUEST_PANIC("no benchmark named ", name);
}

} // namespace quest::algos
