#include "algos/algorithms.hh"

#include <numbers>

#include "util/logging.hh"
#include "util/rng.hh"

namespace quest::algos {

Circuit
vqe(int n_qubits, int layers, uint64_t seed)
{
    QUEST_ASSERT(n_qubits >= 2, "vqe needs at least two qubits");
    QUEST_ASSERT(layers >= 1, "vqe needs at least one layer");
    Rng rng(seed);
    constexpr double pi = std::numbers::pi;

    Circuit c(n_qubits);
    auto angle = [&]() { return rng.uniform(-pi, pi); };

    for (int layer = 0; layer < layers; ++layer) {
        for (int q = 0; q < n_qubits; ++q) {
            c.append(Gate::ry(q, angle()));
            c.append(Gate::rz(q, angle()));
        }
        for (int q = 0; q + 1 < n_qubits; ++q)
            c.append(Gate::cx(q, q + 1));
    }
    for (int q = 0; q < n_qubits; ++q) {
        c.append(Gate::ry(q, angle()));
        c.append(Gate::rz(q, angle()));
    }
    return c;
}

} // namespace quest::algos
