#include "algos/algorithms.hh"

#include "util/logging.hh"

namespace quest::algos {

namespace {

/**
 * First-order Trotter evolution shared by the three spin models.
 * Per step: exp(-i dt J (sx XX + sy YY + sz ZZ)) on nearest-neighbor
 * pairs, then exp(-i dt h X) on every spin for the transverse field.
 */
Circuit
trotterEvolution(int n_spins, int steps, double dt, double coupling,
                 double field, bool sx, bool sy, bool sz)
{
    QUEST_ASSERT(n_spins >= 2, "spin chain needs at least two spins");
    QUEST_ASSERT(steps >= 1, "need at least one Trotter step");

    Circuit c(n_spins);
    const double jtheta = 2.0 * coupling * dt;
    const double htheta = 2.0 * field * dt;

    for (int step = 0; step < steps; ++step) {
        // Even bonds then odd bonds (standard even-odd ordering).
        for (int parity = 0; parity < 2; ++parity) {
            for (int i = parity; i + 1 < n_spins; i += 2) {
                if (sx)
                    c.append(Gate::rxx(i, i + 1, jtheta));
                if (sy)
                    c.append(Gate::ryy(i, i + 1, jtheta));
                if (sz)
                    c.append(Gate::rzz(i, i + 1, jtheta));
            }
        }
        if (field != 0.0) {
            for (int q = 0; q < n_spins; ++q)
                c.append(Gate::rx(q, htheta));
        }
    }
    return c;
}

} // namespace

Circuit
tfim(int n_spins, int steps, double dt, double coupling, double field)
{
    return trotterEvolution(n_spins, steps, dt, coupling, field,
                            false, false, true);
}

Circuit
heisenberg(int n_spins, int steps, double dt, double coupling, double field)
{
    return trotterEvolution(n_spins, steps, dt, coupling, field,
                            true, true, true);
}

Circuit
xy(int n_spins, int steps, double dt, double coupling, double field)
{
    return trotterEvolution(n_spins, steps, dt, coupling, field,
                            true, true, false);
}

} // namespace quest::algos
