#include "baseline/pass_manager.hh"

#include "ir/lower.hh"
#include "util/logging.hh"

namespace quest {

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    passes.push_back(std::move(pass));
}

Circuit
PassManager::optimize(const Circuit &circuit, int max_iterations) const
{
    Circuit result = circuit;
    for (int iter = 0; iter < max_iterations; ++iter) {
        bool changed = false;
        for (const auto &pass : passes)
            changed |= pass->run(result);
        if (!changed)
            return result;
    }
    warn("pass manager did not reach a fixpoint in ", max_iterations,
         " sweeps");
    return result;
}

PassManager
PassManager::standard()
{
    PassManager manager;
    manager.addPass(std::make_unique<SingleQubitFusionPass>());
    manager.addPass(std::make_unique<CnotCancellationPass>());
    manager.addPass(std::make_unique<IdentityRemovalPass>());
    return manager;
}

Circuit
qiskitLikeOptimize(const Circuit &circuit)
{
    static const PassManager manager = PassManager::standard();
    return manager.optimize(lowerToNative(circuit));
}

} // namespace quest
