#include "baseline/passes.hh"

#include <optional>

#include "linalg/decompose.hh"
#include "util/logging.hh"

namespace quest {

namespace {

bool
isOneQubitUnitary(const Gate &g)
{
    return gateArity(g.type) == 1 && g.type != GateType::Measure &&
           g.type != GateType::Barrier;
}

/** True if the gate's matrix is diagonal (commutes with CX control). */
bool
isDiagonal(const Gate &g)
{
    switch (g.type) {
      case GateType::Z: case GateType::S: case GateType::Sdg:
      case GateType::T: case GateType::Tdg: case GateType::RZ:
      case GateType::U1:
        return true;
      case GateType::U3:
        return std::abs(std::sin(g.params[0] / 2.0)) < 1e-12;
      default:
        return false;
    }
}

/** True if the gate is an X-axis rotation (commutes with CX target). */
bool
isXAxis(const Gate &g)
{
    switch (g.type) {
      case GateType::X: case GateType::RX: case GateType::SX:
        return true;
      case GateType::U3: {
        // U3(theta, -pi/2, pi/2) is RX(theta).
        Matrix m = gateMatrix(g);
        return std::abs(m(0, 1) - m(1, 0)) < 1e-12 &&
               std::abs(m(0, 0) - m(1, 1)) < 1e-12 &&
               std::abs(m(0, 0).imag()) < 1e-12 &&
               std::abs(m(0, 1).real()) < 1e-12;
      }
      default:
        return false;
    }
}

bool
isIdentityUpToPhase(const Gate &g, double tol = 1e-10)
{
    if (!isOneQubitUnitary(g))
        return false;
    return gateMatrix(g).equalUpToPhase(Matrix::identity(2), tol);
}

} // namespace

bool
SingleQubitFusionPass::run(Circuit &circuit) const
{
    bool changed = false;
    // pending[q]: index of an unfused one-qubit gate awaiting a
    // successor on wire q.
    std::vector<std::optional<size_t>> pending(circuit.numQubits());

    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (isOneQubitUnitary(g)) {
            int q = g.qubits[0];
            if (pending[q]) {
                // Combine: later gate g applied after earlier one.
                Matrix fused =
                    gateMatrix(g) * gateMatrix(circuit[*pending[q]]);
                ZyzAngles a = zyzDecompose(fused);
                circuit.replace(*pending[q],
                                Gate::u3(q, a.theta, a.phi, a.lambda));
                circuit.erase(i);
                --i;
                changed = true;
            } else {
                pending[q] = i;
            }
        } else {
            for (int q : g.qubits)
                pending[q].reset();
        }
    }

    // Drop fused gates that became the identity.
    for (size_t i = 0; i < circuit.size(); ++i) {
        if (isIdentityUpToPhase(circuit[i])) {
            circuit.erase(i);
            --i;
            changed = true;
        }
    }
    return changed;
}

bool
CnotCancellationPass::run(Circuit &circuit) const
{
    bool changed = false;
    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.type != GateType::CX)
            continue;
        const int control = g.qubits[0];
        const int target = g.qubits[1];

        // Scan forward for a cancelling CX, skipping commuting gates.
        for (size_t j = i + 1; j < circuit.size(); ++j) {
            const Gate &h = circuit[j];
            if (h.type == GateType::Barrier || h.type == GateType::Measure) {
                bool overlap = false;
                for (int q : h.qubits)
                    overlap |= (q == control || q == target);
                if (overlap)
                    break;
                continue;
            }
            if (h.type == GateType::CX && h.qubits[0] == control &&
                h.qubits[1] == target) {
                circuit.erase(j);
                circuit.erase(i);
                // Restart from the gate before i (loop ++ follows).
                i = (i <= 1) ? static_cast<size_t>(-1) : i - 2;
                changed = true;
                break;
            }

            bool touches_control = h.actsOn(control);
            bool touches_target = h.actsOn(target);
            if (!touches_control && !touches_target)
                continue;

            bool commutes = true;
            if (touches_control) {
                if (isOneQubitUnitary(h)) {
                    commutes &= isDiagonal(h);
                } else if (h.type == GateType::CX) {
                    commutes &= h.qubits[0] == control;
                } else {
                    commutes = false;
                }
            }
            if (commutes && touches_target) {
                if (isOneQubitUnitary(h)) {
                    commutes &= isXAxis(h);
                } else if (h.type == GateType::CX) {
                    commutes &= h.qubits[1] == target;
                } else {
                    commutes = false;
                }
            }
            if (!commutes)
                break;
        }
    }
    return changed;
}

bool
IdentityRemovalPass::run(Circuit &circuit) const
{
    bool changed = false;
    for (size_t i = 0; i < circuit.size(); ++i) {
        if (isIdentityUpToPhase(circuit[i])) {
            circuit.erase(i);
            --i;
            changed = true;
        }
    }
    return changed;
}

} // namespace quest
