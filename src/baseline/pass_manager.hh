/**
 * @file
 * Fixpoint pass manager, the "Qiskit" configuration of the paper's
 * evaluation (all compiler optimizations applied one after another
 * until nothing changes).
 */

#ifndef QUEST_BASELINE_PASS_MANAGER_HH
#define QUEST_BASELINE_PASS_MANAGER_HH

#include <memory>
#include <vector>

#include "baseline/passes.hh"

namespace quest {

/** Runs a pass pipeline to fixpoint. */
class PassManager
{
  public:
    PassManager() = default;

    /** Append a pass to the pipeline. */
    void addPass(std::unique_ptr<Pass> pass);

    /**
     * Run the pipeline repeatedly until a full sweep makes no change
     * (bounded at @p max_iterations sweeps).
     */
    Circuit optimize(const Circuit &circuit, int max_iterations = 32) const;

    /**
     * The standard "Qiskit" configuration: 1q fusion, commutative CX
     * cancellation and identity removal.
     */
    static PassManager standard();

  private:
    std::vector<std::unique_ptr<Pass>> passes;
};

/** Shorthand: lower to native and run the standard pipeline. */
Circuit qiskitLikeOptimize(const Circuit &circuit);

} // namespace quest

#endif // QUEST_BASELINE_PASS_MANAGER_HH
