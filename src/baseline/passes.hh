/**
 * @file
 * Peephole optimization passes modelled after the Qiskit transpiler
 * passes that matter for CNOT count on the paper's benchmarks. They
 * are the "Qiskit" comparison configuration of the evaluation.
 *
 * All passes preserve the circuit unitary up to a global phase.
 */

#ifndef QUEST_BASELINE_PASSES_HH
#define QUEST_BASELINE_PASSES_HH

#include <string>

#include "ir/circuit.hh"

namespace quest {

/** Interface for a rewrite pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Human-readable pass name. */
    virtual std::string name() const = 0;

    /** Rewrite in place; returns true if anything changed. */
    virtual bool run(Circuit &circuit) const = 0;
};

/**
 * Fuse runs of adjacent one-qubit gates on the same wire into one U3
 * (Qiskit's Optimize1qGates): multiplies the 2x2 matrices and
 * re-decomposes, dropping the result entirely if it is the identity
 * up to phase.
 */
class SingleQubitFusionPass : public Pass
{
  public:
    std::string name() const override { return "1q-fusion"; }
    bool run(Circuit &circuit) const override;
};

/**
 * Cancel CX pairs with identical control/target separated only by
 * gates that commute with the CX (Qiskit's CommutativeCancellation):
 * diagonal gates on the control wire, X-axis gates on the target
 * wire, and CXs sharing the same control or the same target.
 */
class CnotCancellationPass : public Pass
{
  public:
    std::string name() const override { return "cx-cancellation"; }
    bool run(Circuit &circuit) const override;
};

/** Remove one-qubit gates that are the identity up to global phase. */
class IdentityRemovalPass : public Pass
{
  public:
    std::string name() const override { return "identity-removal"; }
    bool run(Circuit &circuit) const override;
};

} // namespace quest

#endif // QUEST_BASELINE_PASSES_HH
